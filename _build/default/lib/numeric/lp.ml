type var = int

type sense = Le | Eq | Ge

type direction = Minimize | Maximize

type row = { terms : (float * var) list; sense : sense; rhs : float; row_name : string }

type t = {
  lp_name : string;
  dir : direction;
  mutable vars : int;
  mutable var_names : string list;  (* reversed *)
  mutable lower_bounds : float list;  (* reversed *)
  mutable objective : (float * var) list;
  mutable rows : row list;  (* reversed *)
}

let create ?(name = "lp") dir =
  { lp_name = name; dir; vars = 0; var_names = []; lower_bounds = []; objective = []; rows = [] }

let name t = t.lp_name
let direction t = t.dir

let add_var ?name ?(lb = 0.) t =
  let v = t.vars in
  let vname = match name with Some n -> n | None -> Printf.sprintf "x%d" v in
  t.vars <- v + 1;
  t.var_names <- vname :: t.var_names;
  t.lower_bounds <- lb :: t.lower_bounds;
  v

let add_vars ?(prefix = "x") t k =
  Array.init k (fun i -> add_var ~name:(Printf.sprintf "%s%d" prefix i) t)

let var_name t v = List.nth t.var_names (t.vars - 1 - v)
let num_vars t = t.vars
let num_constraints t = List.length t.rows

let check_var t v fn =
  if v < 0 || v >= t.vars then invalid_arg (Printf.sprintf "Lp.%s: unknown variable %d" fn v)

let set_objective t terms =
  List.iter (fun (_, v) -> check_var t v "set_objective") terms;
  t.objective <- terms

let add_constraint ?name t terms sense rhs =
  List.iter (fun (_, v) -> check_var t v "add_constraint") terms;
  let row_name =
    match name with Some n -> n | None -> Printf.sprintf "c%d" (List.length t.rows)
  in
  t.rows <- { terms; sense; rhs; row_name } :: t.rows

type solution = {
  objective : float;
  values : float array;
  duals : float array;
  iterations : int;
}

type outcome = Optimal of solution | Infeasible | Unbounded

let value sol (v : var) = sol.values.(v)

(* Lowering.  Structural layout of standard-form columns:
   - for each user variable: one column (shifted by its finite lower bound),
     or two columns (positive/negative parts) when the variable is free;
   - then one slack (Le) or surplus (Ge) column per inequality row. *)

type col_map = Single of int * float (* column, shift *) | Split of int * int

let to_standard t =
  let lbs = Array.of_list (List.rev t.lower_bounds) in
  let next_col = ref 0 in
  let fresh () =
    let c = !next_col in
    incr next_col;
    c
  in
  let cols =
    Array.map
      (fun lb ->
        if lb = Float.neg_infinity then
          let p = fresh () in
          let m = fresh () in
          Split (p, m)
        else Single (fresh (), lb))
      lbs
  in
  let rows = Array.of_list (List.rev t.rows) in
  let slack_cols =
    Array.map
      (fun r -> match r.sense with Le -> Some (fresh (), 1.) | Ge -> Some (fresh (), -1.) | Eq -> None)
      rows
  in
  let ncols = !next_col in
  let nrows = Array.length rows in
  let a = Array.make (nrows * ncols) 0. in
  let b = Array.make nrows 0. in
  let add_entry i col x = a.((i * ncols) + col) <- a.((i * ncols) + col) +. x in
  Array.iteri
    (fun i r ->
      let rhs = ref r.rhs in
      let add_term (coef, v) =
        match cols.(v) with
        | Single (col, shift) ->
            add_entry i col coef;
            if shift <> 0. then rhs := !rhs -. (coef *. shift)
        | Split (p, m) ->
            add_entry i p coef;
            add_entry i m (-.coef)
      in
      List.iter add_term r.terms;
      (match slack_cols.(i) with
      | Some (col, sign) -> add_entry i col sign
      | None -> ());
      b.(i) <- !rhs)
    rows;
  let c = Array.make ncols 0. in
  let obj_sign = match t.dir with Minimize -> 1. | Maximize -> -1. in
  List.iter
    (fun (coef, v) ->
      match cols.(v) with
      | Single (col, _) -> c.(col) <- c.(col) +. (obj_sign *. coef)
      | Split (p, m) ->
          c.(p) <- c.(p) +. (obj_sign *. coef);
          c.(m) <- c.(m) -. (obj_sign *. coef))
    t.objective;
  { Simplex.nrows; ncols; a; b; c }

type engine = Dense | Revised

let solve ?eps ?max_iter ?(engine = Dense) t =
  let std = to_standard t in
  let result =
    match engine with
    | Dense -> Simplex.solve ?eps ?max_iter std
    | Revised -> Simplex_revised.solve ?eps ?max_iter std
  in
  match result with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Optimal sol ->
      let lbs = Array.of_list (List.rev t.lower_bounds) in
      (* Recompute the column layout to invert the variable mapping. *)
      let next_col = ref 0 in
      let fresh () =
        let c = !next_col in
        incr next_col;
        c
      in
      let values =
        Array.map
          (fun lb ->
            if lb = Float.neg_infinity then
              let p = fresh () in
              let m = fresh () in
              sol.Simplex.x.(p) -. sol.Simplex.x.(m)
            else
              let col = fresh () in
              sol.Simplex.x.(col) +. lb)
          lbs
      in
      let obj_sign = match t.dir with Minimize -> 1. | Maximize -> -1. in
      (* Objective constant from lower-bound shifts is reconstructed by
         re-evaluating the user objective on the mapped values. *)
      let objective =
        List.fold_left (fun acc (coef, v) -> acc +. (coef *. values.(v))) 0. t.objective
      in
      let duals = Array.map (fun y -> obj_sign *. y) sol.Simplex.duals in
      Optimal { objective; values; duals; iterations = sol.Simplex.iterations }

let pp_outcome ppf = function
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Unbounded -> Format.fprintf ppf "unbounded"
  | Optimal s ->
      Format.fprintf ppf "optimal: %.6g (%d iterations)" s.objective s.iterations
