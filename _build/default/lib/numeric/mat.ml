type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.

let init rows cols f =
  let m = zeros rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then invalid_arg "Mat.of_rows: no rows";
  let c = Array.length rows.(0) in
  if not (Array.for_all (fun row -> Array.length row = c) rows) then
    invalid_arg "Mat.of_rows: ragged rows";
  init r c (fun i j -> rows.(i).(j))

let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x
let update m i j f = set m i j (f (get m i j))
let copy m = { m with data = Array.copy m.data }
let row m i = Array.sub m.data (i * m.cols) m.cols
let col m j = Array.init m.rows (fun i -> get m i j)
let transpose m = init m.cols m.rows (fun i j -> get m j i)

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.(base + j) *. v.(j))
      done;
      !acc)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let m = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          m.data.((i * m.cols) + j) <- m.data.((i * m.cols) + j) +. (aik *. get b k j)
        done
    done
  done;
  m

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.add: dimension mismatch";
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let scale x m = { m with data = Array.map (fun y -> x *. y) m.data }

let swap_rows m i j =
  if i <> j then
    for k = 0 to m.cols - 1 do
      let tmp = get m i k in
      set m i k (get m j k);
      set m j k tmp
    done

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Vec.pp ppf (row m i)
  done;
  Format.fprintf ppf "@]"
