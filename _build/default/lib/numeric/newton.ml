type report = {
  converged : bool;
  solution : Vec.t;
  residual : float;
  iterations : int;
  singular_jacobian : bool;
}

let numeric_jacobian ?(h = 1e-7) f x =
  let n = Vec.dim x in
  let fx = f x in
  let m = Vec.dim fx in
  let jac = Mat.zeros m n in
  for j = 0 to n - 1 do
    let step = h *. Float.max 1. (Float.abs x.(j)) in
    let xj = Vec.copy x in
    xj.(j) <- xj.(j) +. step;
    let fxj = f xj in
    for i = 0 to m - 1 do
      Mat.set jac i j ((fxj.(i) -. fx.(i)) /. step)
    done
  done;
  jac

let clip lower x =
  match lower with
  | None -> x
  | Some lb -> Array.mapi (fun i v -> Float.max lb.(i) v) x

let solve ?(max_iter = 200) ?(tol = 1e-9) ?(damped = true) ?jacobian ?lower ~f ~x0 () =
  let jac_of = match jacobian with Some j -> j | None -> numeric_jacobian f in
  let rec loop x iters =
    let fx = f x in
    let res = Vec.norm_inf fx in
    if res <= tol then
      { converged = true; solution = x; residual = res; iterations = iters; singular_jacobian = false }
    else if iters >= max_iter || not (Float.is_finite res) then
      { converged = false; solution = x; residual = res; iterations = iters; singular_jacobian = false }
    else
      match Lu.solve (jac_of x) (Vec.scale (-1.) fx) with
      | exception Lu.Singular _ ->
          { converged = false; solution = x; residual = res; iterations = iters; singular_jacobian = true }
      | dx ->
          if damped then begin
            (* Halving line search on the residual norm; accept the last
               candidate even without improvement so the iteration can
               escape flat regions (and honestly report non-convergence). *)
            let rec search alpha attempts =
              let candidate = clip lower (Vec.add x (Vec.scale alpha dx)) in
              let cres = Vec.norm_inf (f candidate) in
              if cres < res || attempts >= 12 then candidate
              else search (alpha /. 2.) (attempts + 1)
            in
            loop (search 1. 0) (iters + 1)
          end
          else loop (clip lower (Vec.add x dx)) (iters + 1)
  in
  loop (clip lower x0) 0
