(** Dense vectors of floats.

    A thin layer over [float array] providing the handful of operations the
    rest of the numeric stack needs.  All operations allocate fresh vectors
    unless the name ends in [_inplace]. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a vector of length [n] filled with [x]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val zeros : int -> t
(** [zeros n] is [create n 0.]. *)

val dim : t -> int
(** Length of the vector. *)

val copy : t -> t

val of_list : float list -> t

val to_list : t -> float list

val add : t -> t -> t
(** Elementwise sum.  @raise Invalid_argument on dimension mismatch. *)

val sub : t -> t -> t
(** Elementwise difference.  @raise Invalid_argument on dimension mismatch. *)

val scale : float -> t -> t
(** [scale a v] multiplies every component by [a]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float
(** Inner product.  @raise Invalid_argument on dimension mismatch. *)

val sum : t -> float

val norm_inf : t -> float
(** Maximum absolute component (0 for the empty vector). *)

val norm2 : t -> float
(** Euclidean norm. *)

val max_index : t -> int
(** Index of the largest component; first one on ties.
    @raise Invalid_argument on the empty vector. *)

val map2 : (float -> float -> float) -> t -> t -> t

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance [tol] (default 1e-9). *)

val pp : Format.formatter -> t -> unit
(** Prints as [[x0; x1; ...]] with 6 significant digits. *)
