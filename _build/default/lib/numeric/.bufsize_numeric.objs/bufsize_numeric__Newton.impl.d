lib/numeric/newton.ml: Array Float Lu Mat Vec
