lib/numeric/simplex_revised.ml: Array Float Int List Lu Mat Option Printf Simplex Sys
