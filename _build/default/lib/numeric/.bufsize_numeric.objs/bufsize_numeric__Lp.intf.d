lib/numeric/lp.mli: Format Simplex
