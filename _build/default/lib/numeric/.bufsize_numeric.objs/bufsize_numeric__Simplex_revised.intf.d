lib/numeric/simplex_revised.mli: Simplex
