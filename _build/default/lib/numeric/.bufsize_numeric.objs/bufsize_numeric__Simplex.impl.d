lib/numeric/simplex.ml: Array Float Int Lu Mat Printf Sys
