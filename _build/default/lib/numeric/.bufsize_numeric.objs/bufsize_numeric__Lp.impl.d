lib/numeric/lp.ml: Array Float Format List Printf Simplex Simplex_revised
