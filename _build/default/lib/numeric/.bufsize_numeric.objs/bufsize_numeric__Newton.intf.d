lib/numeric/newton.mli: Mat Vec
