lib/numeric/simplex.mli:
