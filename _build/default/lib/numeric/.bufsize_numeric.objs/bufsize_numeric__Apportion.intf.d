lib/numeric/apportion.mli:
