lib/numeric/apportion.ml: Array Float Int List
