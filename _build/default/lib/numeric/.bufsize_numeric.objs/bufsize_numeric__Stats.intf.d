lib/numeric/stats.mli:
