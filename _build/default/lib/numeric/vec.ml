type t = float array

let create n x = Array.make n x
let init = Array.init
let zeros n = create n 0.
let dim = Array.length
let copy = Array.copy
let of_list = Array.of_list
let to_list = Array.to_list

let check_dims name u v =
  if Array.length u <> Array.length v then
    invalid_arg (Printf.sprintf "Vec.%s: dimensions %d <> %d" name (Array.length u) (Array.length v))

let add u v =
  check_dims "add" u v;
  Array.mapi (fun i x -> x +. v.(i)) u

let sub u v =
  check_dims "sub" u v;
  Array.mapi (fun i x -> x -. v.(i)) u

let scale a v = Array.map (fun x -> a *. x) v

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot u v =
  check_dims "dot" u v;
  let acc = ref 0. in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (u.(i) *. v.(i))
  done;
  !acc

let sum v = Array.fold_left ( +. ) 0. v

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. v

let norm2 v = sqrt (dot v v)

let max_index v =
  if Array.length v = 0 then invalid_arg "Vec.max_index: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) > v.(!best) then best := i
  done;
  !best

let map2 f u v =
  check_dims "map2" u v;
  Array.mapi (fun i x -> f x v.(i)) u

let approx_equal ?(tol = 1e-9) u v =
  Array.length u = Array.length v
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) u v

let pp ppf v =
  Format.fprintf ppf "[@[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%.6g" x)
    v;
  Format.fprintf ppf "@]]"
