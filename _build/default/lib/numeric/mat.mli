(** Dense row-major matrices of floats.

    Sized for the problems this library solves: CTMC generators and LP
    tableaux with up to a few thousand rows/columns.  No attempt is made at
    cache blocking; clarity first. *)

type t = {
  rows : int;
  cols : int;
  data : float array;  (** row-major, length [rows * cols] *)
}

val create : int -> int -> float -> t
(** [create rows cols x] is a [rows]x[cols] matrix filled with [x]. *)

val zeros : int -> int -> t

val identity : int -> t

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] has entry [f i j] at row [i], column [j]. *)

val of_rows : float array array -> t
(** Builds from an array of equal-length rows.
    @raise Invalid_argument if rows have differing lengths or there are none. *)

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val update : t -> int -> int -> (float -> float) -> unit
(** [update m i j f] sets entry [(i,j)] to [f] of its current value. *)

val copy : t -> t

val row : t -> int -> Vec.t
(** Fresh copy of row [i]. *)

val col : t -> int -> Vec.t
(** Fresh copy of column [j]. *)

val transpose : t -> t

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix-vector product.  @raise Invalid_argument on dimension mismatch. *)

val mul : t -> t -> t
(** Matrix-matrix product.  @raise Invalid_argument on dimension mismatch. *)

val add : t -> t -> t

val scale : float -> t -> t

val swap_rows : t -> int -> int -> unit

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
