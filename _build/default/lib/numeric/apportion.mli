(** Integer apportionment of a budget according to real-valued weights.

    Buffer sizing ends with "give each client an integer number of buffer
    words summing to the total budget"; the largest-remainder method keeps
    the integer allocation as close as possible to the real-valued target
    while honouring per-client minima. *)

val largest_remainder : ?minimum:int -> budget:int -> float array -> int array
(** [largest_remainder ~budget weights] returns integer shares summing to
    [budget], proportional to [weights] (which must be nonnegative, not all
    zero unless [budget = 0]).  [minimum] (default [0]) is a per-entry floor;
    [budget] must be at least [minimum * length].  Remainder ties are broken
    by index for determinism.
    @raise Invalid_argument on negative weights or impossible budgets. *)

val proportional_caps :
  ?minimum:int -> budget:int -> demands:int array -> unit -> int array
(** Like {!largest_remainder} with integer demands as weights, but never
    allocates more than each entry's demand when the budget allows meeting
    all demands (surplus is then spread by largest remainder of demand). *)
