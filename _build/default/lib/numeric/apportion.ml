let largest_remainder ?(minimum = 0) ~budget weights =
  let n = Array.length weights in
  Array.iter (fun w -> if w < 0. then invalid_arg "Apportion: negative weight") weights;
  if budget < minimum * n then invalid_arg "Apportion: budget below per-entry minimum";
  if n = 0 then [||]
  else begin
    let spare = budget - (minimum * n) in
    let total = Array.fold_left ( +. ) 0. weights in
    if total <= 0. then begin
      if spare > 0 && budget > 0 then
        (* No preference information: spread the spare evenly. *)
        Array.init n (fun i -> minimum + (spare / n) + if i < spare mod n then 1 else 0)
      else Array.make n minimum
    end
    else begin
      let quota = Array.map (fun w -> float_of_int spare *. w /. total) weights in
      let floors = Array.map (fun q -> int_of_float (Float.trunc q)) quota in
      let assigned = Array.fold_left ( + ) 0 floors in
      let leftover = spare - assigned in
      let by_remainder =
        List.init n (fun i -> i)
        |> List.sort (fun i j ->
               let ri = quota.(i) -. Float.trunc quota.(i)
               and rj = quota.(j) -. Float.trunc quota.(j) in
               match compare rj ri with 0 -> compare i j | c -> c)
      in
      let shares = Array.map (fun f -> f) floors in
      List.iteri (fun rank i -> if rank < leftover then shares.(i) <- shares.(i) + 1) by_remainder;
      Array.map2 (fun s _ -> s + minimum) shares weights
    end
  end

let proportional_caps ?(minimum = 0) ~budget ~demands () =
  Array.iter (fun d -> if d < 0 then invalid_arg "Apportion: negative demand") demands;
  let base = Array.map (fun d -> Int.max minimum d) demands in
  let used = Array.fold_left ( + ) 0 base in
  if used < budget then begin
    (* Meet every demand (with the floor) and spread the surplus. *)
    let extra = largest_remainder ~budget:(budget - used) (Array.map float_of_int demands) in
    Array.map2 ( + ) base extra
  end
  else if used = budget then base
  else
    (* Demands (or floors) exceed the budget: divide proportionally. *)
    largest_remainder ~minimum ~budget (Array.map float_of_int demands)
