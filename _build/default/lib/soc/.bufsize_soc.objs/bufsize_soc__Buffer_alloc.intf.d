lib/soc/buffer_alloc.mli: Format Topology Traffic
