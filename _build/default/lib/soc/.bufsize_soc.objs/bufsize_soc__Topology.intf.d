lib/soc/topology.mli: Format
