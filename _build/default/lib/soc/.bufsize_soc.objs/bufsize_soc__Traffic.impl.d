lib/soc/traffic.ml: Array Format Hashtbl List Option Printf Topology
