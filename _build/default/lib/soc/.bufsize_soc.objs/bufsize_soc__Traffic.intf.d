lib/soc/traffic.mli: Format Topology
