lib/soc/splitting.ml: Array Format List Topology Traffic
