lib/soc/dot.mli: Buffer_alloc Topology Traffic
