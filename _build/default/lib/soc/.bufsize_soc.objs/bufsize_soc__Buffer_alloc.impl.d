lib/soc/buffer_alloc.ml: Array Bufsize_numeric Float Format Hashtbl List Topology Traffic
