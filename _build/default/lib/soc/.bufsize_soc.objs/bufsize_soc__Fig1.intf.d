lib/soc/fig1.mli: Topology Traffic
