lib/soc/spec_parser.ml: Array Buffer Hashtbl List Printf Result String Topology Traffic
