lib/soc/sizing.ml: Array Buffer_alloc Bufsize_mdp Bufsize_numeric Bus_model Float Format Int List Splitting Topology Traffic
