lib/soc/netproc.mli: Topology Traffic
