lib/soc/dot.ml: Array Buffer Buffer_alloc List Printf String Topology Traffic
