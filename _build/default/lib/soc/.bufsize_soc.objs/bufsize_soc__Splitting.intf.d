lib/soc/splitting.mli: Format Topology Traffic
