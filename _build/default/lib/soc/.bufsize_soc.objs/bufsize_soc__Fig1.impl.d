lib/soc/fig1.ml: Topology Traffic
