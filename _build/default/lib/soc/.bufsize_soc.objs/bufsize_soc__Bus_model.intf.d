lib/soc/bus_model.mli: Bufsize_mdp Format Splitting Traffic
