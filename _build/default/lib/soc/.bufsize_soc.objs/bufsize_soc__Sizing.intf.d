lib/soc/sizing.mli: Buffer_alloc Bufsize_mdp Bus_model Format Splitting Topology Traffic
