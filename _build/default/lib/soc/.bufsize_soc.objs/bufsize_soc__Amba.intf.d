lib/soc/amba.mli: Topology Traffic
