lib/soc/spec_parser.mli: Topology Traffic
