lib/soc/amba.ml: Topology Traffic
