lib/soc/topology.ml: Array Format List Printf Queue String
