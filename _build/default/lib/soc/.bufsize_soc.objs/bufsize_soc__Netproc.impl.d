lib/soc/netproc.ml: Array Topology Traffic
