lib/soc/bus_model.ml: Array Bufsize_mdp Float Format List Printf Splitting String Traffic
