lib/soc/monolithic.mli: Bufsize_numeric Format
