lib/soc/monolithic.ml: Array Bufsize_numeric Bufsize_prob Format Option
