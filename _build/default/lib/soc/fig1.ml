let processor_names = [| "P1"; "P2"; "P3"; "P4"; "P5" |]

let create ?(rate_scale = 1.0) () =
  if rate_scale <= 0. then invalid_arg "Fig1.create: rate_scale must be positive";
  let b = Topology.builder () in
  let bus_a = Topology.add_bus b ~service_rate:4.0 "a" in
  let bus_b = Topology.add_bus b ~service_rate:5.0 "b" in
  let bus_f = Topology.add_bus b ~service_rate:4.0 "f" in
  let bus_g = Topology.add_bus b ~service_rate:5.0 "g" in
  let p1 = Topology.add_processor b ~bus:bus_a "P1" in
  let p2 = Topology.add_processor b ~bus:bus_a "P2" in
  let p3 = Topology.add_processor b ~bus:bus_b "P3" in
  let p4 = Topology.add_processor b ~bus:bus_f "P4" in
  let p5 = Topology.add_processor b ~bus:bus_g "P5" in
  let _b1 = Topology.add_bridge b ~between:(bus_a, bus_b) "b1" in
  let _b2 = Topology.add_bridge b ~between:(bus_b, bus_f) "b2" in
  let _b3 = Topology.add_bridge b ~between:(bus_f, bus_g) "b3" in
  let _b4 = Topology.add_bridge b ~between:(bus_b, bus_g) "b4" in
  let topo = Topology.finalize b in
  let r x = x *. rate_scale in
  let flows =
    [
      (* Local traffic on bus a. *)
      { Traffic.src = p1; dst = p2; rate = r 1.2 };
      (* Processors 2, 3 and 5 talk across buses b, f and g (the paper's
         motivating interaction), so their flows cross bridges. *)
      { Traffic.src = p2; dst = p3; rate = r 0.9 };
      { Traffic.src = p3; dst = p5; rate = r 0.8 };
      { Traffic.src = p5; dst = p3; rate = r 0.6 };
      { Traffic.src = p3; dst = p4; rate = r 0.5 };
      { Traffic.src = p4; dst = p5; rate = r 0.7 };
    ]
  in
  (topo, Traffic.create topo flows)
