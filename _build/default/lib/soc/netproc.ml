let num_processors = 17

let paper_index p = p + 1

(* The default scale calibrates bus utilizations to ~0.85-0.95, the regime
   where the paper's Figure 3 numbers live: per-processor baseline losses
   of tens-to-hundreds per 2000 time units at 160 buffer words, ~20-30%
   total-loss reduction from CTMDP resizing, and ~50-60% vs the timeout
   policy. *)
let create ?(rate_scale = 1.12) () =
  if rate_scale <= 0. then invalid_arg "Netproc.create: rate_scale must be positive";
  let b = Topology.builder () in
  let ing0 = Topology.add_bus b ~service_rate:6.0 "ing0" in
  let ing1 = Topology.add_bus b ~service_rate:6.0 "ing1" in
  let core = Topology.add_bus b ~service_rate:20.0 "core" in
  let acc = Topology.add_bus b ~service_rate:4.5 "acc" in
  let egr = Topology.add_bus b ~service_rate:5.5 "egr" in
  let proc bus name = Topology.add_processor b ~bus name in
  (* Paper processors 1..17. *)
  let p = Array.make 17 0 in
  p.(0) <- proc ing0 "P1";
  p.(1) <- proc ing0 "P2";
  p.(2) <- proc ing0 "P3";
  p.(3) <- proc ing0 "P4";
  p.(4) <- proc ing1 "P5";
  p.(5) <- proc ing1 "P6";
  p.(6) <- proc ing1 "P7";
  p.(7) <- proc ing1 "P8";
  p.(8) <- proc core "P9";
  p.(9) <- proc core "P10";
  p.(10) <- proc core "P11";
  p.(11) <- proc core "P12";
  p.(12) <- proc acc "P13";
  p.(13) <- proc acc "P14";
  p.(14) <- proc acc "P15";
  p.(15) <- proc egr "P16";
  p.(16) <- proc egr "P17";
  ignore (Topology.add_bridge b ~between:(ing0, core) "br-i0c");
  ignore (Topology.add_bridge b ~between:(ing1, core) "br-i1c");
  ignore (Topology.add_bridge b ~between:(core, acc) "br-ca");
  ignore (Topology.add_bridge b ~between:(core, egr) "br-ce");
  let topo = Topology.finalize b in
  let r x = x *. rate_scale in
  let flow src dst rate = { Traffic.src = p.(src - 1); dst = p.(dst - 1); rate = r rate } in
  let flows =
    [
      (* Ingress cluster 0 feeds the packet-processing engines. *)
      flow 1 9 1.4;
      flow 2 10 1.0;
      flow 3 11 0.8;
      flow 4 12 1.2;
      (* Ingress cluster 1. *)
      flow 5 9 1.1;
      flow 6 10 1.3;
      flow 7 11 0.7;
      flow 8 12 0.9;
      (* Core engines use accelerators and push to egress. *)
      flow 9 13 0.9;
      flow 9 16 0.8;
      flow 10 14 0.7;
      flow 10 17 0.9;
      flow 11 15 0.5;
      flow 11 16 0.6;
      flow 12 16 1.0;
      flow 12 17 0.5;
      (* Accelerators return results. *)
      flow 13 9 0.7;
      flow 14 10 0.6;
      flow 15 11 0.4;
      (* Egress feedback / flow control. *)
      flow 16 1 0.3;
      flow 17 5 0.3;
      (* Local chatter. *)
      flow 1 2 0.4;
      flow 5 6 0.4;
      flow 9 10 0.5;
    ]
  in
  (topo, Traffic.create topo flows)
