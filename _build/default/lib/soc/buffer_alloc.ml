module Apportion = Bufsize_numeric.Apportion

type entry = { bus : Topology.bus_id; client : Traffic.client; words : int }

type t = { entries : entry array; total : int }

let make triples =
  let seen = Hashtbl.create 16 in
  let entries =
    List.map
      (fun (bus, client, words) ->
        if words < 0 then invalid_arg "Buffer_alloc.make: negative words";
        let key = (bus, client) in
        if Hashtbl.mem seen key then invalid_arg "Buffer_alloc.make: duplicate client";
        Hashtbl.add seen key ();
        { bus; client; words })
      triples
    |> Array.of_list
  in
  { entries; total = Array.fold_left (fun acc e -> acc + e.words) 0 entries }

let lookup t bus client =
  match
    Array.find_opt (fun e -> e.bus = bus && Traffic.client_equal e.client client) t.entries
  with
  | Some e -> e.words
  | None -> 0

let total t = t.total
let num_buffers t = Array.length t.entries

let client_keys traffic =
  List.map (fun (bus, c, r) -> (bus, c, r)) (Traffic.all_clients traffic)

let allocate traffic ~budget weights_of =
  let keys = client_keys traffic in
  let weights = Array.of_list (List.map weights_of keys) in
  let shares = Apportion.largest_remainder ~minimum:1 ~budget weights in
  let entries =
    List.mapi (fun i (bus, c, _) -> { bus; client = c; words = shares.(i) }) keys
  in
  { entries = Array.of_list entries; total = budget }

let uniform traffic ~budget = allocate traffic ~budget (fun _ -> 1.)

let traffic_proportional traffic ~budget = allocate traffic ~budget (fun (_, _, r) -> r)

let of_requirements traffic ~budget reqs =
  let requirement (bus, c, _) =
    match
      List.find_opt (fun (b, rc, _) -> b = bus && Traffic.client_equal rc c) reqs
    with
    | Some (_, _, r) -> Float.max 0. r
    | None -> 0.
  in
  (* Demand-capped apportionment: when the budget covers the modeled
     demands, meet them and spread the surplus proportionally — straight
     proportional division would inflate the largest demands far beyond
     what the model asked for and starve everyone else. *)
  let keys = client_keys traffic in
  let demands = Array.of_list (List.map (fun k -> int_of_float (ceil (requirement k))) keys) in
  let shares = Apportion.proportional_caps ~minimum:1 ~budget ~demands () in
  let entries =
    List.mapi (fun i (bus, c, _) -> { bus; client = c; words = shares.(i) }) keys
  in
  { entries = Array.of_list entries; total = Array.fold_left ( + ) 0 shares }

let scale_budget t ~budget =
  let weights = Array.map (fun e -> float_of_int e.words) t.entries in
  let shares = Apportion.largest_remainder ~minimum:1 ~budget weights in
  let entries = Array.mapi (fun i e -> { e with words = shares.(i) }) t.entries in
  { entries; total = budget }

let pp topo ppf t =
  Format.fprintf ppf "@[<v>allocation: %d words over %d buffers" t.total (num_buffers t);
  Array.iter
    (fun e ->
      Format.fprintf ppf "@,  %-18s on %-8s : %3d"
        (Traffic.client_label topo e.client)
        (Topology.bus topo e.bus).Topology.bus_name e.words)
    t.entries;
  Format.fprintf ppf "@]"
