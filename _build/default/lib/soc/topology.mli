(** SoC communication-architecture topology.

    An architecture is a set of buses, bridges connecting pairs of buses,
    and processors (IP cores) each attached to one bus — the structure of
    the paper's Figure 1.  Buses are the vertices of the "bus graph" and
    bridges its edges; requests between processors on different buses are
    routed along shortest bridge paths.

    Build with the mutable {!builder} API, then {!finalize}; a finalized
    topology is immutable and validated (connected references, no
    duplicate names, no bridge from a bus to itself). *)

type bus_id = int
type proc_id = int
type bridge_id = int

type bus = { bus_id : bus_id; bus_name : string; service_rate : float }
(** [service_rate] is the bus transfer rate mu: requests served per time
    unit when the bus is busy. *)

type processor = { proc_id : proc_id; proc_name : string; home_bus : bus_id }

type bridge = {
  bridge_id : bridge_id;
  bridge_name : string;
  endpoints : bus_id * bus_id;
}

type builder

type t

val builder : unit -> builder

val add_bus : builder -> ?service_rate:float -> string -> bus_id
(** Default [service_rate] is [1.0].
    @raise Invalid_argument on duplicate name or nonpositive rate. *)

val add_processor : builder -> bus:bus_id -> string -> proc_id

val add_bridge : builder -> between:bus_id * bus_id -> string -> bridge_id
(** @raise Invalid_argument if the endpoints coincide or are unknown. *)

val finalize : builder -> t

val num_buses : t -> int
val num_processors : t -> int
val num_bridges : t -> int

val bus : t -> bus_id -> bus
val processor : t -> proc_id -> processor
val bridge : t -> bridge_id -> bridge

val buses : t -> bus array
val processors : t -> processor array
val bridges : t -> bridge array

val processors_on_bus : t -> bus_id -> processor list

val bridges_of_bus : t -> bus_id -> bridge list

val find_bus : t -> string -> bus_id
(** @raise Not_found *)

val find_processor : t -> string -> proc_id
(** @raise Not_found *)

val route : t -> bus_id -> bus_id -> bridge_id list option
(** Shortest bridge path between two buses (BFS; [Some []] when equal,
    [None] when disconnected).  Deterministic tie-breaking by bridge id. *)

val bus_path : t -> bus_id -> bus_id -> bus_id list option
(** The bus sequence visited by {!route}, including both endpoints. *)

val is_connected : t -> bool
(** Whether the bus graph is connected (vacuously true with <= 1 bus). *)

val pp : Format.formatter -> t -> unit
