let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

type statement =
  | Bus of string * float
  | Proc of string * string
  | Bridge of string * string * string
  | Flow of string * string * float

let parse_float ~lineno what s =
  match float_of_string_opt s with
  | Some f when f > 0. -> Ok f
  | Some _ -> Error (Printf.sprintf "line %d: %s must be positive, got %s" lineno what s)
  | None -> Error (Printf.sprintf "line %d: malformed %s %S" lineno what s)

let parse_statement lineno tokens =
  match tokens with
  | [] -> Ok None
  | [ "bus"; name ] -> Ok (Some (Bus (name, 1.0)))
  | [ "bus"; name; "rate"; rate ] ->
      Result.map (fun r -> Some (Bus (name, r))) (parse_float ~lineno "bus rate" rate)
  | [ "proc"; name; "on"; bus ] -> Ok (Some (Proc (name, bus)))
  | [ "bridge"; name; bus1; bus2 ] -> Ok (Some (Bridge (name, bus1, bus2)))
  | [ "flow"; src; "->"; dst; "rate"; rate ] ->
      Result.map (fun r -> Some (Flow (src, dst, r))) (parse_float ~lineno "flow rate" rate)
  | keyword :: _ when List.mem keyword [ "bus"; "proc"; "bridge"; "flow" ] ->
      Error
        (Printf.sprintf "line %d: malformed %s statement: %S" lineno keyword
           (String.concat " " tokens))
  | keyword :: _ -> Error (Printf.sprintf "line %d: unknown keyword %S" lineno keyword)

let parse text =
  let lines = String.split_on_char '\n' text in
  let statements = ref [] in
  let error = ref None in
  List.iteri
    (fun i line ->
      if !error = None then
        match parse_statement (i + 1) (tokenize (strip_comment line)) with
        | Ok None -> ()
        | Ok (Some s) -> statements := (i + 1, s) :: !statements
        | Error e -> error := Some e)
    lines;
  match !error with
  | Some e -> Error e
  | None -> (
      let statements = List.rev !statements in
      let b = Topology.builder () in
      let buses = Hashtbl.create 8 in
      let procs = Hashtbl.create 8 in
      let flows = ref [] in
      let build () =
        List.iter
          (fun (lineno, s) ->
            match s with
            | Bus (name, rate) ->
                if Hashtbl.mem buses name then
                  failwith (Printf.sprintf "line %d: duplicate bus %S" lineno name);
                Hashtbl.add buses name (Topology.add_bus b ~service_rate:rate name)
            | Proc (name, bus) -> (
                match Hashtbl.find_opt buses bus with
                | None -> failwith (Printf.sprintf "line %d: unknown bus %S" lineno bus)
                | Some bus_id ->
                    if Hashtbl.mem procs name then
                      failwith (Printf.sprintf "line %d: duplicate processor %S" lineno name);
                    Hashtbl.add procs name (Topology.add_processor b ~bus:bus_id name))
            | Bridge (name, bus1, bus2) -> (
                match (Hashtbl.find_opt buses bus1, Hashtbl.find_opt buses bus2) with
                | None, _ -> failwith (Printf.sprintf "line %d: unknown bus %S" lineno bus1)
                | _, None -> failwith (Printf.sprintf "line %d: unknown bus %S" lineno bus2)
                | Some x, Some y -> (
                    try ignore (Topology.add_bridge b ~between:(x, y) name)
                    with Invalid_argument msg ->
                      failwith (Printf.sprintf "line %d: %s" lineno msg)))
            | Flow (src, dst, rate) -> (
                match (Hashtbl.find_opt procs src, Hashtbl.find_opt procs dst) with
                | None, _ -> failwith (Printf.sprintf "line %d: unknown processor %S" lineno src)
                | _, None -> failwith (Printf.sprintf "line %d: unknown processor %S" lineno dst)
                | Some s, Some d ->
                    if s = d then
                      failwith (Printf.sprintf "line %d: flow from %S to itself" lineno src);
                    flows := { Traffic.src = s; dst = d; rate } :: !flows))
          statements;
        if !flows = [] then failwith "no flows defined: nothing to size";
        let topo = Topology.finalize b in
        let traffic =
          try Traffic.create topo (List.rev !flows)
          with Invalid_argument msg -> failwith msg
        in
        (topo, traffic)
      in
      match build () with
      | result -> Ok result
      | exception Failure msg -> Error msg
      | exception Invalid_argument msg -> Error msg)

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      parse text

let to_string topo traffic =
  let buf = Buffer.create 512 in
  Array.iter
    (fun (b : Topology.bus) ->
      Buffer.add_string buf
        (Printf.sprintf "bus %s rate %g\n" b.Topology.bus_name b.Topology.service_rate))
    (Topology.buses topo);
  Array.iter
    (fun (p : Topology.processor) ->
      Buffer.add_string buf
        (Printf.sprintf "proc %s on %s\n" p.Topology.proc_name
           (Topology.bus topo p.Topology.home_bus).Topology.bus_name))
    (Topology.processors topo);
  Array.iter
    (fun (br : Topology.bridge) ->
      let x, y = br.Topology.endpoints in
      Buffer.add_string buf
        (Printf.sprintf "bridge %s %s %s\n" br.Topology.bridge_name
           (Topology.bus topo x).Topology.bus_name
           (Topology.bus topo y).Topology.bus_name))
    (Topology.bridges topo);
  Array.iter
    (fun (f : Traffic.flow) ->
      Buffer.add_string buf
        (Printf.sprintf "flow %s -> %s rate %g\n"
           (Topology.processor topo f.Traffic.src).Topology.proc_name
           (Topology.processor topo f.Traffic.dst).Topology.proc_name
           f.Traffic.rate))
    (Traffic.flows traffic);
  Buffer.contents buf
