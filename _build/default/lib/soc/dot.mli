(** Graphviz export of architectures and allocations.

    Renders the bus/bridge/processor graph (and optionally a buffer
    allocation as node annotations) in DOT format, for inspection with
    [dot -Tsvg].  Buses are boxes, processors ellipses, bridges edges
    between buses; bridge buffers inserted by the split appear as small
    house-shaped nodes on the bus they feed. *)

val topology : ?rankdir:string -> Topology.t -> string
(** DOT source for the bare architecture graph ([rankdir] defaults to
    ["LR"]). *)

val with_allocation : ?rankdir:string -> Topology.t -> Traffic.t -> Buffer_alloc.t -> string
(** DOT source with per-client buffer sizes (words) in the node labels and
    bridge-buffer nodes for every loaded bridge direction. *)
