(** Text format for architectures and traffic.

    A small line-oriented description language so the CLI can size
    user-defined SoCs without writing OCaml:

    {v
    # comments and blank lines are ignored
    bus    core rate 20.0          # a bus with service rate (default 1.0)
    bus    io
    proc   cpu on core             # a processor homed on a bus
    proc   dma on io
    bridge br0 core io             # a bridge between two buses
    flow   cpu -> dma rate 1.5     # a Poisson request flow
    v}

    Identifiers are non-empty words without whitespace; keywords are
    lowercase.  Errors are reported with their line numbers. *)

val parse : string -> (Topology.t * Traffic.t, string) result
(** Parse a description from a string.  At least one flow is required
    (a traffic-less architecture has nothing to size). *)

val parse_file : string -> (Topology.t * Traffic.t, string) result
(** Like {!parse}, reading the given file.  I/O errors are reported in
    the [Error] case. *)

val to_string : Topology.t -> Traffic.t -> string
(** Render an architecture back into the text format ({!parse} of the
    result reconstructs an equivalent architecture). *)
