let processor_names = [| "cpu0"; "cpu1"; "dma"; "mem"; "uart"; "spi"; "gpio"; "timer" |]

let create ?(rate_scale = 1.0) () =
  if rate_scale <= 0. then invalid_arg "Amba.create: rate_scale must be positive";
  let b = Topology.builder () in
  let ahb = Topology.add_bus b ~service_rate:10.0 "AHB" in
  let apb = Topology.add_bus b ~service_rate:2.0 "APB" in
  let cpu0 = Topology.add_processor b ~bus:ahb "cpu0" in
  let cpu1 = Topology.add_processor b ~bus:ahb "cpu1" in
  let dma = Topology.add_processor b ~bus:ahb "dma" in
  let mem = Topology.add_processor b ~bus:ahb "mem" in
  let uart = Topology.add_processor b ~bus:apb "uart" in
  let spi = Topology.add_processor b ~bus:apb "spi" in
  let gpio = Topology.add_processor b ~bus:apb "gpio" in
  let timer = Topology.add_processor b ~bus:apb "timer" in
  ignore (Topology.add_bridge b ~between:(ahb, apb) "ahb-apb");
  let topo = Topology.finalize b in
  let r x = x *. rate_scale in
  let flows =
    [
      (* Fast-bus traffic: cores and DMA hammer the memory controller. *)
      { Traffic.src = cpu0; dst = mem; rate = r 2.2 };
      { Traffic.src = cpu1; dst = mem; rate = r 1.8 };
      { Traffic.src = dma; dst = mem; rate = r 1.4 };
      { Traffic.src = mem; dst = dma; rate = r 0.8 };
      (* Peripheral-bound writes: the APB choke through the bridge. *)
      { Traffic.src = cpu0; dst = uart; rate = r 0.5 };
      { Traffic.src = cpu0; dst = spi; rate = r 0.3 };
      { Traffic.src = cpu1; dst = gpio; rate = r 0.25 };
      { Traffic.src = dma; dst = spi; rate = r 0.35 };
      (* Peripheral interrupts / readbacks flowing up to the cores. *)
      { Traffic.src = uart; dst = cpu0; rate = r 0.15 };
      { Traffic.src = timer; dst = cpu1; rate = r 0.1 };
      { Traffic.src = gpio; dst = cpu0; rate = r 0.05 };
    ]
  in
  (topo, Traffic.create topo flows)
