(** An AMBA-style two-tier testbench.

    The paper motivates bridged architectures with "the AMBA and
    CoreConnect systems"; this module provides the canonical AMBA shape: a
    high-speed system bus (AHB) carrying processors, DMA and a memory
    controller, connected through an AHB-APB bridge to a slow peripheral
    bus (APB) with low-bandwidth peripherals.  The AHB-APB bridge buffer is
    the classic pain point — peripheral-bound writes pile up in front of
    the slow bus — which makes this architecture a natural showcase for
    bridge buffer insertion.

    Components (8 processors, 2 buses, 1 bridge):
    - AHB (fast): [cpu0], [cpu1], [dma], [mem] (memory controller)
    - APB (slow): [uart], [spi], [gpio], [timer] *)

val create : ?rate_scale:float -> unit -> Topology.t * Traffic.t
(** [rate_scale] scales every flow (default 1.0, calibrated to AHB
    utilization ~0.8 and APB utilization ~0.9 with the bridge as the
    dominant APB client). *)

val processor_names : string array
(** Names in processor-id order. *)
