(** Buffer-space allocations and the baseline sizing policies.

    An allocation assigns an integer number of buffer words (the paper's
    "units") to every client buffer of the architecture — processor
    outgoing buffers and inserted bridge buffers — summing to the total
    budget.  The paper compares the CTMDP-derived allocation against the
    "constant" (uniform) sizing and mentions the naive division "depending
    on traffic ratios"; both baselines live here, the CTMDP-derived one is
    produced by {!Sizing}. *)

type entry = {
  bus : Topology.bus_id;
  client : Traffic.client;
  words : int;
}

type t = {
  entries : entry array;  (** deterministic order: bus-major, client order *)
  total : int;
}

val make : (Topology.bus_id * Traffic.client * int) list -> t
(** @raise Invalid_argument on negative word counts or duplicate clients. *)

val lookup : t -> Topology.bus_id -> Traffic.client -> int
(** Words allocated to a client buffer; 0 when the client is absent. *)

val total : t -> int

val num_buffers : t -> int

val uniform : Traffic.t -> budget:int -> t
(** The "constant buffer sizing policy": the budget is split as evenly as
    possible over all client buffers (every buffer gets at least 1 word;
    @raise Invalid_argument if the budget cannot cover that). *)

val traffic_proportional : Traffic.t -> budget:int -> t
(** Split proportionally to client arrival rates (the "simple division of
    the space depending on traffic ratios" the paper contrasts with),
    with a 1-word floor per buffer. *)

val of_requirements :
  Traffic.t -> budget:int -> (Topology.bus_id * Traffic.client * float) list -> t
(** Allocation proportional to real-valued requirements (e.g. occupancy
    quantiles from the CTMDP policy), largest-remainder rounded, 1-word
    floor per client buffer.  Clients of the traffic spec that are absent
    from the requirement list are treated as requirement 0. *)

val scale_budget : t -> budget:int -> t
(** Re-apportion an existing allocation's proportions to a new budget. *)

val pp : Topology.t -> Format.formatter -> t -> unit
