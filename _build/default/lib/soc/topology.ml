type bus_id = int
type proc_id = int
type bridge_id = int

type bus = { bus_id : bus_id; bus_name : string; service_rate : float }
type processor = { proc_id : proc_id; proc_name : string; home_bus : bus_id }

type bridge = {
  bridge_id : bridge_id;
  bridge_name : string;
  endpoints : bus_id * bus_id;
}

type builder = {
  mutable b_buses : bus list;  (* reversed *)
  mutable b_procs : processor list;
  mutable b_bridges : bridge list;
  mutable names : string list;
}

type t = {
  t_buses : bus array;
  t_procs : processor array;
  t_bridges : bridge array;
  by_bus : processor list array;  (* processors per bus *)
  bridges_by_bus : bridge list array;
}

let builder () = { b_buses = []; b_procs = []; b_bridges = []; names = [] }

let check_name b name =
  if List.mem name b.names then
    invalid_arg (Printf.sprintf "Topology: duplicate name %S" name);
  b.names <- name :: b.names

let add_bus b ?(service_rate = 1.0) name =
  if service_rate <= 0. then invalid_arg "Topology.add_bus: nonpositive service rate";
  check_name b name;
  let id = List.length b.b_buses in
  b.b_buses <- { bus_id = id; bus_name = name; service_rate } :: b.b_buses;
  id

let known_bus b id =
  if id < 0 || id >= List.length b.b_buses then
    invalid_arg (Printf.sprintf "Topology: unknown bus %d" id)

let add_processor b ~bus name =
  known_bus b bus;
  check_name b name;
  let id = List.length b.b_procs in
  b.b_procs <- { proc_id = id; proc_name = name; home_bus = bus } :: b.b_procs;
  id

let add_bridge b ~between name =
  let x, y = between in
  known_bus b x;
  known_bus b y;
  if x = y then invalid_arg "Topology.add_bridge: endpoints coincide";
  check_name b name;
  let id = List.length b.b_bridges in
  b.b_bridges <- { bridge_id = id; bridge_name = name; endpoints = between } :: b.b_bridges;
  id

let finalize b =
  let t_buses = Array.of_list (List.rev b.b_buses) in
  let t_procs = Array.of_list (List.rev b.b_procs) in
  let t_bridges = Array.of_list (List.rev b.b_bridges) in
  let nb = Array.length t_buses in
  let by_bus = Array.make nb [] in
  Array.iter (fun p -> by_bus.(p.home_bus) <- p :: by_bus.(p.home_bus)) t_procs;
  Array.iteri (fun i ps -> by_bus.(i) <- List.rev ps) by_bus;
  let bridges_by_bus = Array.make nb [] in
  Array.iter
    (fun br ->
      let x, y = br.endpoints in
      bridges_by_bus.(x) <- br :: bridges_by_bus.(x);
      bridges_by_bus.(y) <- br :: bridges_by_bus.(y))
    t_bridges;
  Array.iteri (fun i bs -> bridges_by_bus.(i) <- List.rev bs) bridges_by_bus;
  { t_buses; t_procs; t_bridges; by_bus; bridges_by_bus }

let num_buses t = Array.length t.t_buses
let num_processors t = Array.length t.t_procs
let num_bridges t = Array.length t.t_bridges
let bus t id = t.t_buses.(id)
let processor t id = t.t_procs.(id)
let bridge t id = t.t_bridges.(id)
let buses t = Array.copy t.t_buses
let processors t = Array.copy t.t_procs
let bridges t = Array.copy t.t_bridges
let processors_on_bus t id = t.by_bus.(id)
let bridges_of_bus t id = t.bridges_by_bus.(id)

let find_bus t name =
  match Array.find_opt (fun b -> b.bus_name = name) t.t_buses with
  | Some b -> b.bus_id
  | None -> raise Not_found

let find_processor t name =
  match Array.find_opt (fun p -> p.proc_name = name) t.t_procs with
  | Some p -> p.proc_id
  | None -> raise Not_found

(* BFS over the bus graph; parents record the bridge used to reach a bus. *)
let route t src dst =
  if src = dst then Some []
  else begin
    let n = num_buses t in
    let parent = Array.make n None in
    let visited = Array.make n false in
    visited.(src) <- true;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun br ->
          let x, y = br.endpoints in
          let v = if x = u then y else x in
          if not visited.(v) then begin
            visited.(v) <- true;
            parent.(v) <- Some (u, br.bridge_id);
            if v = dst then found := true else Queue.add v q
          end)
        t.bridges_by_bus.(u)
    done;
    if not !found then None
    else begin
      let rec collect v acc =
        match parent.(v) with
        | None -> acc
        | Some (u, br) -> collect u (br :: acc)
      in
      Some (collect dst [])
    end
  end

let bus_path t src dst =
  match route t src dst with
  | None -> None
  | Some brs ->
      let step current br_id =
        let x, y = (bridge t br_id).endpoints in
        if x = current then y else x
      in
      let rec walk current = function
        | [] -> []
        | br :: rest ->
            let next = step current br in
            next :: walk next rest
      in
      Some (src :: walk src brs)

let is_connected t =
  let n = num_buses t in
  n <= 1
  ||
  let ok = ref true in
  for v = 1 to n - 1 do
    if route t 0 v = None then ok := false
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "@[<v>topology: %d buses, %d processors, %d bridges" (num_buses t)
    (num_processors t) (num_bridges t);
  Array.iter
    (fun b ->
      let procs = processors_on_bus t b.bus_id |> List.map (fun p -> p.proc_name) in
      Format.fprintf ppf "@,  bus %s (mu=%.3g): procs [%s]" b.bus_name b.service_rate
        (String.concat "; " procs))
    t.t_buses;
  Array.iter
    (fun br ->
      let x, y = br.endpoints in
      Format.fprintf ppf "@,  bridge %s: %s <-> %s" br.bridge_name (bus t x).bus_name
        (bus t y).bus_name)
    t.t_bridges;
  Format.fprintf ppf "@]"
