(** The network-processor testbench (the paper's experimental platform).

    The paper evaluates on "a network processor" with 17 processors but
    publishes neither its topology nor its traffic; this module provides a
    deterministic synthetic stand-in with the same scale: 17 processors on
    5 buses (two ingress port clusters, a packet-processing core, an
    accelerator cluster, an egress cluster) joined by 4 bridges, with
    heterogeneous Poisson flows driving every bus to utilization ~0.8-0.9
    so that small buffers lose requests, as in the paper's Figure 3.

    Processor ids 0..16 correspond to the paper's processors 1..17. *)

val num_processors : int
(** 17. *)

val create : ?rate_scale:float -> unit -> Topology.t * Traffic.t
(** [rate_scale] scales every flow.  The default (1.12) is calibrated so
    that the Figure 3 experiment lands in the paper's loss regime; use
    smaller values for lighter load. *)

val paper_index : Topology.proc_id -> int
(** 1-based index as plotted in the paper's Figure 3. *)
