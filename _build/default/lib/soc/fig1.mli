(** The paper's Figure 1 sample architecture.

    Five processors, four buses (a, b, f, g) and four bridges (b1..b4):
    bus [a] talks only to processors, while buses [b], [f] and [g] also
    talk to each other through bridges — the configuration whose monolithic
    model is nonlinear and which the paper splits into the four subsystems
    of its Figure 2.  Link buses c/d/e of the figure are point-to-point
    wires subsumed into the processor attachments.

    The exact rates are not given in the paper; the defaults here produce
    moderate contention (bus utilizations around 0.6-0.9). *)

val create : ?rate_scale:float -> unit -> Topology.t * Traffic.t
(** [rate_scale] multiplies every flow rate (default 1.0). *)

val processor_names : string array
(** ["P1"; ...; "P5"], index = processor id. *)
