type flow = { src : Topology.proc_id; dst : Topology.proc_id; rate : float }

type client =
  | Proc_client of Topology.proc_id
  | Bridge_client of { bridge : Topology.bridge_id; into_bus : Topology.bus_id }

type t = {
  topo : Topology.t;
  flow_list : flow array;
  flow_hops : (Topology.bus_id * client) list array;  (* aligned with flow_list *)
  per_bus : (client * float) list array;  (* aggregated, deterministic order *)
}

let client_equal a b =
  match (a, b) with
  | Proc_client p, Proc_client q -> p = q
  | Bridge_client x, Bridge_client y -> x.bridge = y.bridge && x.into_bus = y.into_bus
  | Proc_client _, Bridge_client _ | Bridge_client _, Proc_client _ -> false

let client_order a b =
  match (a, b) with
  | Proc_client p, Proc_client q -> compare p q
  | Proc_client _, Bridge_client _ -> -1
  | Bridge_client _, Proc_client _ -> 1
  | Bridge_client x, Bridge_client y -> compare (x.bridge, x.into_bus) (y.bridge, y.into_bus)

let route_flow topo f =
  if f.rate <= 0. then invalid_arg "Traffic.create: nonpositive flow rate";
  if f.src = f.dst then invalid_arg "Traffic.create: self flow";
  if f.src < 0 || f.src >= Topology.num_processors topo then
    invalid_arg "Traffic.create: unknown source processor";
  if f.dst < 0 || f.dst >= Topology.num_processors topo then
    invalid_arg "Traffic.create: unknown destination processor";
  let src_bus = (Topology.processor topo f.src).Topology.home_bus in
  let dst_bus = (Topology.processor topo f.dst).Topology.home_bus in
  match Topology.route topo src_bus dst_bus with
  | None ->
      invalid_arg
        (Printf.sprintf "Traffic.create: no route between processors %d and %d" f.src f.dst)
  | Some bridges_on_path ->
      let first_hop = (src_bus, Proc_client f.src) in
      let rec follow current = function
        | [] -> []
        | br_id :: rest ->
            let x, y = (Topology.bridge topo br_id).Topology.endpoints in
            let next = if x = current then y else x in
            (next, Bridge_client { bridge = br_id; into_bus = next }) :: follow next rest
      in
      first_hop :: follow src_bus bridges_on_path

let create topo flow_list =
  let flow_list = Array.of_list flow_list in
  let flow_hops = Array.map (route_flow topo) flow_list in
  let nb = Topology.num_buses topo in
  (* Aggregate client arrival rates per bus. *)
  let tables = Array.init nb (fun _ -> Hashtbl.create 8) in
  Array.iteri
    (fun i f ->
      List.iter
        (fun (bus, client) ->
          let tbl = tables.(bus) in
          let prev = Option.value ~default:0. (Hashtbl.find_opt tbl client) in
          Hashtbl.replace tbl client (prev +. f.rate))
        flow_hops.(i))
    flow_list;
  let per_bus =
    Array.init nb (fun bus ->
        let tbl = tables.(bus) in
        (* Ensure every homed processor appears, possibly at rate 0. *)
        List.iter
          (fun p ->
            let c = Proc_client p.Topology.proc_id in
            if not (Hashtbl.mem tbl c) then Hashtbl.add tbl c 0.)
          (Topology.processors_on_bus topo bus);
        Hashtbl.fold (fun c r acc -> (c, r) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> client_order a b))
  in
  { topo; flow_list; flow_hops; per_bus }

let topology t = t.topo
let flows t = Array.copy t.flow_list

let total_offered t = Array.fold_left (fun acc f -> acc +. f.rate) 0. t.flow_list

let offered_by_proc t p =
  Array.fold_left (fun acc f -> if f.src = p then acc +. f.rate else acc) 0. t.flow_list

let hops t f =
  let rec find i =
    if i >= Array.length t.flow_list then raise Not_found
    else if t.flow_list.(i) = f then t.flow_hops.(i)
    else find (i + 1)
  in
  find 0

let clients_of_bus t bus = t.per_bus.(bus)

let all_clients t =
  List.concat
    (List.init
       (Array.length t.per_bus)
       (fun bus -> List.map (fun (c, r) -> (bus, c, r)) t.per_bus.(bus)))

let client_label topo = function
  | Proc_client p -> (Topology.processor topo p).Topology.proc_name
  | Bridge_client { bridge; into_bus } ->
      Printf.sprintf "%s->%s"
        (Topology.bridge topo bridge).Topology.bridge_name
        (Topology.bus topo into_bus).Topology.bus_name

let bus_utilization t bus =
  let offered = List.fold_left (fun acc (_, r) -> acc +. r) 0. t.per_bus.(bus) in
  offered /. (Topology.bus t.topo bus).Topology.service_rate

let pp ppf t =
  Format.fprintf ppf "@[<v>traffic: %d flows, total rate %.4g" (Array.length t.flow_list)
    (total_offered t);
  Array.iteri
    (fun bus clients ->
      let name = (Topology.bus t.topo bus).Topology.bus_name in
      Format.fprintf ppf "@,  bus %s (rho=%.3f):" name (bus_utilization t bus);
      List.iter
        (fun (c, r) -> Format.fprintf ppf " %s@%.3g" (client_label t.topo c) r)
        clients)
    t.per_bus;
  Format.fprintf ppf "@]"
