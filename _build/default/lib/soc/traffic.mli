(** Traffic specification and routed load derivation.

    A traffic spec is a set of flows (source processor, destination
    processor, Poisson request rate).  Binding a spec to a topology routes
    every flow along the shortest bridge path and derives, for every bus,
    its {e clients}: buffered request sources contending for that bus.
    A client is either a processor's outgoing buffer or a bridge buffer
    (one per direction per bridge, sitting at the entry of the bus it
    feeds) — the buffers the paper inserts to split the architecture. *)

type flow = { src : Topology.proc_id; dst : Topology.proc_id; rate : float }

type client =
  | Proc_client of Topology.proc_id
      (** the processor's outgoing buffer on its home bus *)
  | Bridge_client of { bridge : Topology.bridge_id; into_bus : Topology.bus_id }
      (** the inserted bridge buffer feeding [into_bus] *)

type t

val create : Topology.t -> flow list -> t
(** Routes all flows.
    @raise Invalid_argument on unknown processors, nonpositive rates,
    self-flows, or unroutable (disconnected) flows. *)

val topology : t -> Topology.t

val flows : t -> flow array

val total_offered : t -> float
(** Sum of all flow rates. *)

val offered_by_proc : t -> Topology.proc_id -> float
(** Total request rate emitted by a processor (sum of its flows). *)

val hops : t -> flow -> (Topology.bus_id * client) list
(** The buffer sequence a flow's requests traverse: first the source
    processor's buffer on its home bus, then one bridge buffer per crossed
    bridge.  @raise Not_found if [flow] is not part of this spec. *)

val clients_of_bus : t -> Topology.bus_id -> (client * float) list
(** Clients contending for a bus with their aggregate arrival rates.
    Every processor homed on the bus appears (possibly with rate 0); bridge
    clients appear only when some routed flow loads them.  Deterministic
    order: processors by id, then bridge clients by (bridge, into_bus). *)

val all_clients : t -> (Topology.bus_id * client * float) list
(** {!clients_of_bus} flattened over all buses, bus-major order. *)

val client_label : Topology.t -> client -> string

val client_equal : client -> client -> bool

val bus_utilization : t -> Topology.bus_id -> float
(** Offered load divided by service rate: rho = sum(client rates) / mu.
    Above 1 the bus is overloaded and losses are inevitable. *)

val pp : Format.formatter -> t -> unit
