(** Stationary policies for CTMDPs and their evaluation.

    A stationary (possibly randomized) policy assigns to each state a
    probability distribution over its admissible actions.  Applying a
    policy to a CTMDP yields a plain CTMC whose stationary distribution
    gives the long-run average cost (the gain) and the time-average of any
    extra resource. *)

type t
(** A validated policy for a specific CTMDP shape. *)

val deterministic : Ctmdp.t -> int array -> t
(** [deterministic m choice] selects action [choice.(s)] in state [s].
    @raise Invalid_argument on out-of-range actions. *)

val randomized : Ctmdp.t -> float array array -> t
(** [randomized m probs] with [probs.(s).(a)] the probability of action [a]
    in state [s]; rows must be distributions over the state's actions.
    @raise Invalid_argument on shape or normalization errors (tolerance
    [1e-6]; rows are renormalized exactly). *)

val uniform : Ctmdp.t -> t
(** Equal probability on every admissible action (a convenient baseline). *)

val prob : t -> int -> int -> float
(** [prob p s a] — probability of action [a] in state [s]. *)

val action_probs : t -> int -> float array

val is_deterministic : ?tol:float -> t -> bool

val randomized_states : ?tol:float -> t -> int list
(** States where more than one action has probability above [tol]
    (default [1e-9]) — the "switching" states of a K-switching policy. *)

val induced_ctmc : Ctmdp.t -> t -> Bufsize_prob.Ctmc.t
(** The CTMC obtained by averaging transition rates under the policy. *)

val stationary : Ctmdp.t -> t -> Bufsize_numeric.Vec.t
(** Stationary distribution of {!induced_ctmc}. *)

type evaluation = {
  gain : float;  (** long-run average cost rate *)
  extras : float array;  (** long-run average of each extra resource *)
  occupation : float array array;  (** x(s,a) = pi(s) * prob(a|s) *)
  state_distribution : Bufsize_numeric.Vec.t;
}

val evaluate : Ctmdp.t -> t -> evaluation
(** Long-run averages under the policy (unichain assumed: uses the
    stationary distribution selected by the linear solve). *)

val of_occupation : Ctmdp.t -> float array array -> t
(** Recover a policy from an occupation measure [x(s,a)]: conditional
    probabilities where the state has positive mass, first action
    elsewhere (transient states — any choice is average-cost neutral). *)

val sample_action : Bufsize_prob.Rng.t -> t -> int -> int
(** Draw an action in state [s] according to the policy. *)
