type switch = {
  state : int;
  state_label : string;
  mix : (int * string * float) list;
}

type analysis = {
  switches : switch list;
  num_randomized : int;
  deterministic_states : int;
  bound : int;
  within_bound : bool;
}

let analyze ?(tol = 1e-6) ~constraints m p =
  let n = Ctmdp.num_states m in
  let switches = ref [] in
  let randomized = ref 0 in
  for s = n - 1 downto 0 do
    let probs = Policy.action_probs p s in
    let support =
      Array.to_list (Array.mapi (fun a pr -> (a, pr)) probs)
      |> List.filter (fun (_, pr) -> pr > tol)
    in
    if List.length support > 1 then begin
      incr randomized;
      let mix =
        List.map (fun (a, pr) -> (a, (Ctmdp.action m s a).Ctmdp.label, pr)) support
      in
      switches := { state = s; state_label = Ctmdp.state_label m s; mix } :: !switches
    end
  done;
  {
    switches = !switches;
    num_randomized = !randomized;
    deterministic_states = n - !randomized;
    bound = constraints;
    within_bound = !randomized <= constraints;
  }

let of_occupation ?(tol = 1e-6) ?(mass_tol = 1e-9) ~constraints m x =
  let n = Ctmdp.num_states m in
  let switches = ref [] in
  let randomized = ref 0 in
  for s = n - 1 downto 0 do
    let mass = Array.fold_left ( +. ) 0. x.(s) in
    if mass > mass_tol then begin
      let support =
        Array.to_list (Array.mapi (fun a v -> (a, v /. mass)) x.(s))
        |> List.filter (fun (_, pr) -> pr > tol)
      in
      if List.length support > 1 then begin
        incr randomized;
        let mix =
          List.map (fun (a, pr) -> (a, (Ctmdp.action m s a).Ctmdp.label, pr)) support
        in
        switches := { state = s; state_label = Ctmdp.state_label m s; mix } :: !switches
      end
    end
  done;
  {
    switches = !switches;
    num_randomized = !randomized;
    deterministic_states = n - !randomized;
    bound = constraints;
    within_bound = !randomized <= constraints;
  }

let pp ppf a =
  Format.fprintf ppf "@[<v>K-switching: %d randomized state(s), bound K = %d (%s)" a.num_randomized
    a.bound
    (if a.within_bound then "within bound" else "EXCEEDS bound");
  List.iter
    (fun s ->
      Format.fprintf ppf "@,  state %s:" s.state_label;
      List.iter (fun (_, label, pr) -> Format.fprintf ppf " %s@%.3f" label pr) s.mix)
    a.switches;
  Format.fprintf ppf "@]"
