module Mat = Bufsize_numeric.Mat
module Vec = Bufsize_numeric.Vec
module Lu = Bufsize_numeric.Lu

type result = {
  policy : Policy.t;
  choice : int array;
  gain : float;
  bias : Vec.t;
  iterations : int;
  converged : bool;
}

(* Unknowns: h(0..n-1) and g.  Equations: for each state s,
   sum_j Q_sj h(j) - g = -c_s; plus h(0) = 0. *)
let evaluate_deterministic m choice =
  let n = Ctmdp.num_states m in
  let a = Mat.zeros (n + 1) (n + 1) in
  let b = Array.make (n + 1) 0. in
  for s = 0 to n - 1 do
    let act = Ctmdp.action m s choice.(s) in
    let exit = Ctmdp.exit_rate act in
    Mat.update a s s (fun x -> x -. exit);
    List.iter (fun (j, r) -> Mat.update a s j (fun x -> x +. r)) act.Ctmdp.transitions;
    Mat.set a s n (-1.);
    b.(s) <- -.act.Ctmdp.cost
  done;
  Mat.set a n 0 1.;
  (* b.(n) = 0: bias normalized at state 0 *)
  let sol = Lu.solve a b in
  let bias = Array.sub sol 0 n in
  (sol.(n), bias)

let improvement m bias =
  Array.init (Ctmdp.num_states m) (fun s ->
      let value a =
        let act = Ctmdp.action m s a in
        let exit = Ctmdp.exit_rate act in
        let flow =
          List.fold_left (fun acc (j, r) -> acc +. (r *. bias.(j))) 0. act.Ctmdp.transitions
        in
        act.Ctmdp.cost +. flow -. (exit *. bias.(s))
      in
      let k = Ctmdp.num_actions m s in
      let best = ref 0 and best_val = ref (value 0) in
      for a = 1 to k - 1 do
        let v = value a in
        if v < !best_val then begin
          best := a;
          best_val := v
        end
      done;
      (!best, !best_val))

let solve ?(max_iter = 1000) ?(tol = 1e-9) ?initial m =
  let n = Ctmdp.num_states m in
  let choice =
    match initial with
    | Some c ->
        if Array.length c <> n then invalid_arg "Policy_iteration.solve: initial length mismatch";
        Array.copy c
    | None -> Array.make n 0
  in
  let rec loop choice iters =
    let gain, bias = evaluate_deterministic m choice in
    if iters >= max_iter then
      { policy = Policy.deterministic m choice; choice; gain; bias; iterations = iters; converged = false }
    else begin
      let improved = improvement m bias in
      (* Keep the incumbent action unless a strictly better one exists:
         the standard tie-breaking that guarantees termination. *)
      let next = Array.copy choice in
      let changed = ref false in
      Array.iteri
        (fun s (best, best_val) ->
          let incumbent =
            let act = Ctmdp.action m s choice.(s) in
            let exit = Ctmdp.exit_rate act in
            let flow =
              List.fold_left (fun acc (j, r) -> acc +. (r *. bias.(j))) 0. act.Ctmdp.transitions
            in
            act.Ctmdp.cost +. flow -. (exit *. bias.(s))
          in
          if best_val < incumbent -. tol then begin
            next.(s) <- best;
            changed := true
          end)
        improved;
      if !changed then loop next (iters + 1)
      else
        { policy = Policy.deterministic m choice; choice; gain; bias; iterations = iters; converged = true }
    end
  in
  loop choice 0
