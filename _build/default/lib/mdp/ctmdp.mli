(** Finite continuous-time Markov decision processes.

    A CTMDP has a finite state set [0..num_states-1]; in each state the
    controller picks one of finitely many actions; an action determines
    exponential transition rates to other states, an instantaneous cost
    rate, and a vector of K extra "resource" rates (here: occupied buffer
    space) that constrained formulations bound in time average.

    This is the model class of Feinberg's constrained average-reward CTMDP
    LP (reference [1] of the paper) and everything downstream — the LP
    formulation, policy iteration, and the K-switching analysis — consumes
    values of this type. *)

type action = {
  label : string;
  transitions : (int * float) list;  (** (target state, rate), rate > 0 *)
  cost : float;  (** instantaneous cost rate c(s,a) *)
  extras : float array;  (** K extra resource rates r_k(s,a) *)
}

type t

val create :
  ?state_labels:string array ->
  num_extras:int ->
  action array array ->
  t
(** [create ~num_extras actions] builds and validates a CTMDP where
    [actions.(s)] lists the admissible actions of state [s].
    @raise Invalid_argument if a state has no action, a transition leaves
    the state space, a rate is nonpositive, a self-loop is present, or an
    [extras] vector has length other than [num_extras]. *)

val num_states : t -> int

val num_extras : t -> int

val num_actions : t -> int -> int
(** Actions admissible in a state. *)

val action : t -> int -> int -> action
(** [action t s a] is the [a]-th action of state [s]. *)

val actions : t -> int -> action array

val state_label : t -> int -> string

val total_state_actions : t -> int
(** Total number of (state, action) pairs — the LP's variable count. *)

val exit_rate : action -> float
(** Sum of the action's transition rates. *)

val max_exit_rate : t -> float
(** Over all state-action pairs; the uniformization constant base. *)

val cost_bounds : t -> float * float
(** Minimum and maximum cost rate over all pairs. *)

val map_costs : t -> (int -> int -> action -> float) -> t
(** [map_costs t f] replaces each cost with [f s a action]. *)

val is_unichain_heuristic : t -> bool
(** True when the union graph over all actions is strongly connected —
    a sufficient (not necessary) condition for the unichain property that
    policy iteration needs. *)

val pp_summary : Format.formatter -> t -> unit
