module Vec = Bufsize_numeric.Vec
module Ctmc = Bufsize_prob.Ctmc
module Rng = Bufsize_prob.Rng

type t = { probs : float array array }

let deterministic m choice =
  if Array.length choice <> Ctmdp.num_states m then
    invalid_arg "Policy.deterministic: choice length mismatch";
  let probs =
    Array.mapi
      (fun s a ->
        let k = Ctmdp.num_actions m s in
        if a < 0 || a >= k then
          invalid_arg (Printf.sprintf "Policy.deterministic: action %d out of range in state %d" a s);
        Array.init k (fun i -> if i = a then 1. else 0.))
      choice
  in
  { probs }

let randomized m probs =
  if Array.length probs <> Ctmdp.num_states m then
    invalid_arg "Policy.randomized: row count mismatch";
  let probs =
    Array.mapi
      (fun s row ->
        if Array.length row <> Ctmdp.num_actions m s then
          invalid_arg (Printf.sprintf "Policy.randomized: row %d length mismatch" s);
        Array.iter (fun p -> if p < -1e-12 then invalid_arg "Policy.randomized: negative probability") row;
        let total = Array.fold_left ( +. ) 0. row in
        if Float.abs (total -. 1.) > 1e-6 then
          invalid_arg (Printf.sprintf "Policy.randomized: row %d sums to %g" s total);
        Array.map (fun p -> Float.max 0. p /. total) row)
      probs
  in
  { probs }

let uniform m =
  let probs =
    Array.init (Ctmdp.num_states m) (fun s ->
        let k = Ctmdp.num_actions m s in
        Array.make k (1. /. float_of_int k))
  in
  { probs }

let prob p s a = p.probs.(s).(a)
let action_probs p s = Array.copy p.probs.(s)

let is_deterministic ?(tol = 1e-9) p =
  Array.for_all
    (fun row -> Array.exists (fun x -> Float.abs (x -. 1.) <= tol) row)
    p.probs

let randomized_states ?(tol = 1e-9) p =
  let result = ref [] in
  Array.iteri
    (fun s row ->
      let supported = Array.fold_left (fun acc x -> if x > tol then acc + 1 else acc) 0 row in
      if supported > 1 then result := s :: !result)
    p.probs;
  List.rev !result

let induced_ctmc m p =
  let n = Ctmdp.num_states m in
  let rates = ref [] in
  for s = 0 to n - 1 do
    Array.iteri
      (fun a pa ->
        if pa > 0. then
          List.iter
            (fun (j, r) -> rates := (s, j, pa *. r) :: !rates)
            (Ctmdp.action m s a).Ctmdp.transitions)
      p.probs.(s)
  done;
  Ctmc.of_rates n !rates

let stationary m p = Ctmc.stationary (induced_ctmc m p)

type evaluation = {
  gain : float;
  extras : float array;
  occupation : float array array;
  state_distribution : Vec.t;
}

let evaluate m p =
  let pi = stationary m p in
  let k = Ctmdp.num_extras m in
  let gain = ref 0. in
  let extras = Array.make k 0. in
  let occupation =
    Array.mapi
      (fun s row ->
        Array.mapi
          (fun a pa ->
            let x = pi.(s) *. pa in
            let act = Ctmdp.action m s a in
            gain := !gain +. (x *. act.Ctmdp.cost);
            Array.iteri (fun i e -> extras.(i) <- extras.(i) +. (x *. e)) act.Ctmdp.extras;
            x)
          row)
      p.probs
  in
  { gain = !gain; extras; occupation; state_distribution = pi }

let of_occupation m x =
  if Array.length x <> Ctmdp.num_states m then
    invalid_arg "Policy.of_occupation: row count mismatch";
  let probs =
    Array.mapi
      (fun s row ->
        let k = Ctmdp.num_actions m s in
        if Array.length row <> k then
          invalid_arg (Printf.sprintf "Policy.of_occupation: row %d length mismatch" s);
        let mass = Array.fold_left ( +. ) 0. row in
        if mass > 1e-12 then Array.map (fun v -> Float.max 0. v /. mass) row
        else Array.init k (fun i -> if i = 0 then 1. else 0.))
      x
  in
  { probs }

let sample_action rng p s = Rng.discrete rng p.probs.(s)
