lib/mdp/policy.mli: Bufsize_numeric Bufsize_prob Ctmdp
