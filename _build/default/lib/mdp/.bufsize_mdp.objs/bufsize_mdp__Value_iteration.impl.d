lib/mdp/value_iteration.ml: Array Bufsize_numeric Ctmdp Float List Policy
