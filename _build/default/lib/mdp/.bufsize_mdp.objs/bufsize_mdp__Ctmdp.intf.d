lib/mdp/ctmdp.mli: Format
