lib/mdp/policy_iteration.mli: Bufsize_numeric Ctmdp Policy
