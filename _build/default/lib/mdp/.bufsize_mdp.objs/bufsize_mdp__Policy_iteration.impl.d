lib/mdp/policy_iteration.ml: Array Bufsize_numeric Ctmdp List Policy
