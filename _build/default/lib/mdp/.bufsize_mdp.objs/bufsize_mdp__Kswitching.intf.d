lib/mdp/kswitching.mli: Ctmdp Format Policy
