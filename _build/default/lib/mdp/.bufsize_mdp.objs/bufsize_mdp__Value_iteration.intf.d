lib/mdp/value_iteration.mli: Bufsize_numeric Ctmdp Policy
