lib/mdp/lp_formulation.ml: Array Bufsize_numeric Ctmdp Float List Policy Printf
