lib/mdp/kswitching.ml: Array Ctmdp Format List Policy
