lib/mdp/ctmdp.ml: Array Float Format List Printf
