lib/mdp/constrained.mli: Ctmdp Kswitching Lp_formulation Policy_iteration
