lib/mdp/constrained.ml: Array Ctmdp Kswitching Lp_formulation Policy Policy_iteration
