lib/mdp/lp_formulation.mli: Bufsize_numeric Ctmdp Policy
