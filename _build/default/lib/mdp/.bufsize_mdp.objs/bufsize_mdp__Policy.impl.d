lib/mdp/policy.ml: Array Bufsize_numeric Bufsize_prob Ctmdp Float List Printf
