(** K-switching structure of constrained-optimal policies.

    Feinberg's theorem (reference [1] of the paper): for a unichain CTMDP
    with K average-cost constraints, there exists an optimal stationary
    policy that randomizes between at most two actions in at most K states
    and is deterministic elsewhere — a "K-(randomized) switching policy".
    The paper uses this structure to turn LP state-action probabilities
    into buffer-space requirements.

    This module analyzes an occupation measure (or policy) and reports the
    switching states, their action mixes, and whether the theoretical bound
    holds for the given number of constraints. *)

type switch = {
  state : int;
  state_label : string;
  mix : (int * string * float) list;  (** (action index, label, probability) *)
}

type analysis = {
  switches : switch list;  (** states with nontrivial randomization *)
  num_randomized : int;
  deterministic_states : int;
  bound : int;  (** the K of the instance (number of constraints) *)
  within_bound : bool;  (** [num_randomized <= bound] *)
}

val analyze : ?tol:float -> constraints:int -> Ctmdp.t -> Policy.t -> analysis
(** [analyze ~constraints m p] inspects the policy's support.  [tol]
    (default [1e-6]) is the probability below which an action is treated
    as unused. *)

val of_occupation :
  ?tol:float -> ?mass_tol:float -> constraints:int -> Ctmdp.t -> float array array -> analysis
(** Like {!analyze}, but working directly on the occupation measure:
    states whose total occupation mass is below [mass_tol] (default
    [1e-9]) are skipped — the conditional action probabilities of
    an (almost) never-visited state are numerical noise, not policy
    randomization. *)

val pp : Format.formatter -> analysis -> unit
