type action = {
  label : string;
  transitions : (int * float) list;
  cost : float;
  extras : float array;
}

type t = {
  actions : action array array;
  extras_count : int;
  state_labels : string array;
}

let create ?state_labels ~num_extras actions =
  let n = Array.length actions in
  if n = 0 then invalid_arg "Ctmdp.create: no states";
  if num_extras < 0 then invalid_arg "Ctmdp.create: negative extras count";
  Array.iteri
    (fun s acts ->
      if Array.length acts = 0 then
        invalid_arg (Printf.sprintf "Ctmdp.create: state %d has no action" s);
      Array.iter
        (fun a ->
          if Array.length a.extras <> num_extras then
            invalid_arg
              (Printf.sprintf "Ctmdp.create: state %d action %S has %d extras, expected %d" s
                 a.label (Array.length a.extras) num_extras);
          List.iter
            (fun (j, r) ->
              if j < 0 || j >= n then
                invalid_arg (Printf.sprintf "Ctmdp.create: transition to unknown state %d" j);
              if j = s then invalid_arg "Ctmdp.create: self loop transition";
              if r <= 0. then invalid_arg "Ctmdp.create: nonpositive rate")
            a.transitions)
        acts)
    actions;
  let state_labels =
    match state_labels with
    | Some ls ->
        if Array.length ls <> n then invalid_arg "Ctmdp.create: label count mismatch";
        ls
    | None -> Array.init n string_of_int
  in
  { actions; extras_count = num_extras; state_labels }

let num_states t = Array.length t.actions
let num_extras t = t.extras_count
let num_actions t s = Array.length t.actions.(s)
let action t s a = t.actions.(s).(a)
let actions t s = t.actions.(s)
let state_label t s = t.state_labels.(s)

let total_state_actions t =
  Array.fold_left (fun acc acts -> acc + Array.length acts) 0 t.actions

let exit_rate a = List.fold_left (fun acc (_, r) -> acc +. r) 0. a.transitions

let max_exit_rate t =
  Array.fold_left
    (fun acc acts -> Array.fold_left (fun acc a -> Float.max acc (exit_rate a)) acc acts)
    0. t.actions

let cost_bounds t =
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (Array.iter (fun a ->
         if a.cost < !lo then lo := a.cost;
         if a.cost > !hi then hi := a.cost))
    t.actions;
  (!lo, !hi)

let map_costs t f =
  let actions =
    Array.mapi (fun s acts -> Array.mapi (fun a act -> { act with cost = f s a act }) acts) t.actions
  in
  { t with actions }

let is_unichain_heuristic t =
  (* Strong connectivity of the union graph: forward DFS from state 0 and a
     DFS on the reversed graph must both reach every state. *)
  let n = num_states t in
  let forward = Array.make n [] and backward = Array.make n [] in
  Array.iteri
    (fun s acts ->
      Array.iter
        (fun a ->
          List.iter
            (fun (j, _) ->
              forward.(s) <- j :: forward.(s);
              backward.(j) <- s :: backward.(j))
            a.transitions)
        acts)
    t.actions;
  let reaches_all graph =
    let seen = Array.make n false in
    let rec dfs i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter dfs graph.(i)
      end
    in
    dfs 0;
    Array.for_all (fun b -> b) seen
  in
  reaches_all forward && reaches_all backward

let pp_summary ppf t =
  let lo, hi = cost_bounds t in
  Format.fprintf ppf "CTMDP: %d states, %d state-action pairs, %d extras, cost in [%.4g, %.4g]"
    (num_states t) (total_state_actions t) t.extras_count lo hi
