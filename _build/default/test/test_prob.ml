(* Tests for the probability substrate: RNG determinism and moments,
   distributions, CTMC/DTMC stationary analysis, birth-death closed forms. *)

module Vec = Bufsize_numeric.Vec
module Rng = Bufsize_prob.Rng
module Dist = Bufsize_prob.Dist
module Ctmc = Bufsize_prob.Ctmc
module Dtmc = Bufsize_prob.Dtmc
module Birth_death = Bufsize_prob.Birth_death

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let u = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0. && u < 1.)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 12345 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  check_close 0.01 "mean ~ 0.5" 0.5 (!acc /. float_of_int n)

let test_rng_exponential_mean () =
  let rng = Rng.create 99 in
  let n = 100_000 and rate = 2.5 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~rate
  done;
  check_close 0.01 "mean ~ 1/rate" (1. /. rate) (!acc /. float_of_int n)

let test_rng_poisson_mean () =
  let rng = Rng.create 4242 in
  let check_mean mean =
    let n = 50_000 in
    let acc = ref 0 in
    for _ = 1 to n do
      acc := !acc + Rng.poisson rng ~mean
    done;
    check_close (0.05 *. (mean +. 1.)) "poisson mean" mean (float_of_int !acc /. float_of_int n)
  in
  check_mean 0.5;
  check_mean 5.;
  check_mean 80.

let test_rng_discrete () =
  let rng = Rng.create 31415 in
  let counts = Array.make 3 0 in
  let weights = [| 1.; 2.; 7. |] in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.discrete rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i w ->
      check_close 0.01 "frequency matches weight" (w /. 10.)
        (float_of_int counts.(i) /. float_of_int n))
    weights

let test_rng_int_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "0..6" true (v >= 0 && v < 7)
  done

let test_rng_split_independence () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* Streams must differ and both be usable. *)
  Alcotest.(check bool) "distinct" true (Rng.bits64 parent <> Rng.bits64 child)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 77 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

(* ----------------------------------------------------------------- Dist *)

let test_dist_means () =
  check_float "exp mean" 0.25 (Dist.mean (Dist.exponential 4.));
  check_float "erlang mean" 1.5 (Dist.mean (Dist.erlang 3 2.));
  check_float "det mean" 7. (Dist.mean (Dist.deterministic 7.));
  check_float "uniform mean" 3. (Dist.mean (Dist.uniform 2. 4.))

let test_dist_sampling_moments () =
  let rng = Rng.create 2024 in
  let check d =
    let n = 60_000 in
    let acc = ref 0. in
    for _ = 1 to n do
      acc := !acc +. Dist.sample rng d
    done;
    check_close (0.02 *. (Dist.mean d +. 0.1)) "sample mean" (Dist.mean d)
      (!acc /. float_of_int n)
  in
  check (Dist.exponential 3.);
  check (Dist.erlang 4 2.);
  check (Dist.deterministic 1.25);
  check (Dist.uniform 0.5 2.5)

let test_dist_scale_rate () =
  let d = Dist.scale_rate 2. (Dist.exponential 3.) in
  check_float "rate doubled" 6. (Dist.rate d)

let test_dist_validation () =
  Alcotest.check_raises "bad rate" (Invalid_argument "Dist.exponential: rate must be positive")
    (fun () -> ignore (Dist.exponential 0.))

(* ----------------------------------------------------------------- Ctmc *)

let two_state_ctmc a b = Ctmc.of_rates 2 [ (0, 1, a); (1, 0, b) ]

let test_ctmc_two_state_stationary () =
  (* pi = (b, a) / (a + b). *)
  let c = two_state_ctmc 2. 3. in
  let pi = Ctmc.stationary c in
  check_float "pi0" 0.6 pi.(0);
  check_float "pi1" 0.4 pi.(1)

let test_ctmc_of_generator_roundtrip () =
  let c = two_state_ctmc 1. 4. in
  let c2 = Ctmc.of_generator (Ctmc.generator c) in
  Alcotest.(check bool) "same stationary" true
    (Vec.approx_equal (Ctmc.stationary c) (Ctmc.stationary c2))

let test_ctmc_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Ctmc.of_rates: self loop") (fun () ->
      ignore (Ctmc.of_rates 2 [ (0, 0, 1.) ]));
  Alcotest.check_raises "negative" (Invalid_argument "Ctmc.of_rates: negative rate") (fun () ->
      ignore (Ctmc.of_rates 2 [ (0, 1, -1.) ]))

let test_ctmc_irreducible () =
  Alcotest.(check bool) "two-state loop" true (Ctmc.is_irreducible (two_state_ctmc 1. 1.));
  let absorbing = Ctmc.of_rates 2 [ (0, 1, 1.) ] in
  Alcotest.(check bool) "absorbing not irreducible" false (Ctmc.is_irreducible absorbing)

let test_ctmc_transient_converges () =
  let c = two_state_ctmc 2. 3. in
  let pi_inf = Ctmc.stationary c in
  let pt = Ctmc.transient c [| 1.; 0. |] 50. in
  Alcotest.(check bool) "transient -> stationary" true
    (Vec.approx_equal ~tol:1e-6 pt pi_inf)

let test_ctmc_transient_short_horizon () =
  (* Tiny horizon: nearly the initial distribution. *)
  let c = two_state_ctmc 2. 3. in
  let pt = Ctmc.transient c [| 1.; 0. |] 1e-6 in
  Alcotest.(check bool) "close to start" true (pt.(0) > 0.999)

let test_ctmc_uniformize_stochastic () =
  let c = two_state_ctmc 5. 1. in
  let p = Ctmc.uniformize c in
  for i = 0 to 1 do
    let s = ref 0. in
    for j = 0 to 1 do
      let x = Bufsize_numeric.Mat.get p i j in
      Alcotest.(check bool) "entry in [0,1]" true (x >= 0. && x <= 1.);
      s := !s +. x
    done;
    check_float "row sums to 1" 1. !s
  done

let test_ctmc_stationary_property () =
  (* Property: on random irreducible 3-5 state chains, pi Q = 0. *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 3 5 in
        let* rates = array_size (return (n * n)) (float_range 0.1 5.) in
        return (n, rates))
  in
  let prop (n, rates) =
    let triples = ref [] in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then triples := (i, j, rates.((i * n) + j)) :: !triples
      done
    done;
    let c = Ctmc.of_rates n !triples in
    let pi = Ctmc.stationary c in
    let q = Ctmc.generator c in
    let residual = Bufsize_numeric.Mat.mul_vec (Bufsize_numeric.Mat.transpose q) pi in
    Vec.norm_inf residual < 1e-8 && Float.abs (Vec.sum pi -. 1.) < 1e-9
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:200 ~name:"pi Q = 0" gen prop)

(* ----------------------------------------------------------------- Dtmc *)

let test_dtmc_stationary_matches_power () =
  let p =
    Bufsize_numeric.Mat.of_rows
      [| [| 0.5; 0.5; 0. |]; [| 0.25; 0.5; 0.25 |]; [| 0.; 0.5; 0.5 |] |]
  in
  let d = Dtmc.of_matrix p in
  let direct = Dtmc.stationary d in
  let power = Dtmc.power_stationary d in
  Alcotest.(check bool) "agree" true (Vec.approx_equal ~tol:1e-8 direct power)

let test_dtmc_embedded () =
  let c = two_state_ctmc 2. 6. in
  let d = Dtmc.embedded_of_ctmc c in
  (* Jump chain of a 2-state CTMC alternates deterministically. *)
  let m = Dtmc.matrix d in
  check_float "p01" 1. (Bufsize_numeric.Mat.get m 0 1);
  check_float "p10" 1. (Bufsize_numeric.Mat.get m 1 0)

let test_dtmc_validation () =
  let bad = Bufsize_numeric.Mat.of_rows [| [| 0.5; 0.6 |]; [| 0.5; 0.5 |] |] in
  (match Dtmc.of_matrix bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection")

(* ----------------------------------------------------- Birth-death / MM1K *)

let test_bd_stationary_matches_ctmc () =
  let bd = Birth_death.mm1k ~lambda:2. ~mu:3. ~k:5 in
  let direct = Birth_death.stationary bd in
  let via_ctmc = Ctmc.stationary (Birth_death.to_ctmc bd) in
  Alcotest.(check bool) "product form = LU solve" true
    (Vec.approx_equal ~tol:1e-9 direct via_ctmc)

let test_mm1k_blocking_formula () =
  (* For rho <> 1: P_K = (1-rho) rho^K / (1 - rho^{K+1}). *)
  let lambda = 2. and mu = 3. in
  let k = 4 in
  let rho = lambda /. mu in
  let expected = (1. -. rho) *. (rho ** float_of_int k) /. (1. -. (rho ** float_of_int (k + 1))) in
  check_float "blocking closed form" expected
    (Birth_death.Mm1k.blocking_probability ~lambda ~mu ~k)

let test_mm1k_balanced_load () =
  (* rho = 1: uniform distribution, blocking = 1/(K+1). *)
  check_float "balanced blocking" (1. /. 6.)
    (Birth_death.Mm1k.blocking_probability ~lambda:2. ~mu:2. ~k:5)

let test_mm1k_throughput_conservation () =
  let lambda = 4. and mu = 3. in
  let k = 6 in
  let loss = Birth_death.Mm1k.loss_rate ~lambda ~mu ~k in
  let thru = Birth_death.Mm1k.throughput ~lambda ~mu ~k in
  check_float "lambda = loss + throughput" lambda (loss +. thru)

let test_mm1k_blocking_decreases_with_k () =
  let lambda = 2. and mu = 2.5 in
  let prev = ref 1. in
  for k = 1 to 12 do
    let b = Birth_death.Mm1k.blocking_probability ~lambda ~mu ~k in
    Alcotest.(check bool) "monotone decreasing" true (b < !prev);
    prev := b
  done

let test_mm1k_little_law () =
  let lambda = 1.5 and mu = 2. in
  let k = 5 in
  let n = Birth_death.Mm1k.mean_customers ~lambda ~mu ~k in
  let w = Birth_death.Mm1k.mean_sojourn ~lambda ~mu ~k in
  let thru = Birth_death.Mm1k.throughput ~lambda ~mu ~k in
  check_float "L = lambda_eff W" n (thru *. w)

let () =
  Alcotest.run "prob"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "float in range" `Quick test_rng_float_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "poisson mean" `Quick test_rng_poisson_mean;
          Alcotest.test_case "discrete frequencies" `Quick test_rng_discrete;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "dist",
        [
          Alcotest.test_case "means" `Quick test_dist_means;
          Alcotest.test_case "sampling moments" `Quick test_dist_sampling_moments;
          Alcotest.test_case "scale_rate" `Quick test_dist_scale_rate;
          Alcotest.test_case "validation" `Quick test_dist_validation;
        ] );
      ( "ctmc",
        [
          Alcotest.test_case "two-state stationary" `Quick test_ctmc_two_state_stationary;
          Alcotest.test_case "generator roundtrip" `Quick test_ctmc_of_generator_roundtrip;
          Alcotest.test_case "validation" `Quick test_ctmc_validation;
          Alcotest.test_case "irreducibility" `Quick test_ctmc_irreducible;
          Alcotest.test_case "transient converges" `Quick test_ctmc_transient_converges;
          Alcotest.test_case "transient short horizon" `Quick test_ctmc_transient_short_horizon;
          Alcotest.test_case "uniformization stochastic" `Quick test_ctmc_uniformize_stochastic;
          Alcotest.test_case "pi Q = 0 (property)" `Quick test_ctmc_stationary_property;
        ] );
      ( "dtmc",
        [
          Alcotest.test_case "stationary matches power iteration" `Quick
            test_dtmc_stationary_matches_power;
          Alcotest.test_case "embedded chain" `Quick test_dtmc_embedded;
          Alcotest.test_case "validation" `Quick test_dtmc_validation;
        ] );
      ( "birth-death",
        [
          Alcotest.test_case "product form = LU" `Quick test_bd_stationary_matches_ctmc;
          Alcotest.test_case "MM1K blocking closed form" `Quick test_mm1k_blocking_formula;
          Alcotest.test_case "MM1K balanced load" `Quick test_mm1k_balanced_load;
          Alcotest.test_case "flow conservation" `Quick test_mm1k_throughput_conservation;
          Alcotest.test_case "blocking monotone in K" `Quick test_mm1k_blocking_decreases_with_k;
          Alcotest.test_case "Little's law" `Quick test_mm1k_little_law;
        ] );
    ]
