(* Integration tests: the full paper pipeline on small instances — sizing,
   re-simulation, policy comparison, and the core claims' shape (losses
   drop after sizing; large budgets drive losses toward zero). *)

module B = Bufsize
module Stats = Bufsize_numeric.Stats

(* A compact bridged architecture that runs fast: two buses, one bridge,
   four processors, utilization high enough to lose requests. *)
let small_arch () =
  let b = B.Topology.builder () in
  let bus0 = B.Topology.add_bus b ~service_rate:3.0 "left" in
  let bus1 = B.Topology.add_bus b ~service_rate:3.0 "right" in
  let p0 = B.Topology.add_processor b ~bus:bus0 "A" in
  let p1 = B.Topology.add_processor b ~bus:bus0 "B" in
  let p2 = B.Topology.add_processor b ~bus:bus1 "C" in
  let p3 = B.Topology.add_processor b ~bus:bus1 "D" in
  let _ = B.Topology.add_bridge b ~between:(bus0, bus1) "br" in
  let topo = B.Topology.finalize b in
  let traffic =
    B.Traffic.create topo
      [
        { B.Traffic.src = p0; dst = p2; rate = 1.2 };
        { B.Traffic.src = p1; dst = p0; rate = 0.9 };
        { B.Traffic.src = p2; dst = p3; rate = 1.0 };
        { B.Traffic.src = p3; dst = p1; rate = 0.8 };
      ]
  in
  (topo, traffic)

let quick_experiment ?(budget = 12) traffic =
  B.experiment ~budget ~horizon:800. ~warmup:50. ~replications:3
    ~config:{ (B.Sizing.default_config ~budget) with B.Sizing.max_states = 48 }
    traffic

let test_full_pipeline_runs () =
  let _, traffic = small_arch () in
  let outcome = B.size_and_evaluate (quick_experiment traffic) in
  Alcotest.(check bool) "sizing allocated the budget" true
    (B.Buffer_alloc.total outcome.B.sizing.B.Sizing.allocation = 12);
  Alcotest.(check bool) "baseline loses requests" true
    (Stats.mean outcome.B.before.B.aggregate.B.Replicate.total_lost > 0.)

let test_sizing_beats_or_matches_uniform () =
  (* The headline claim, on a small instance with modest statistics: the
     CTMDP sizing should not be substantially worse than uniform. *)
  let _, traffic = small_arch () in
  let outcome = B.size_and_evaluate (quick_experiment traffic) in
  let before = Stats.mean outcome.B.before.B.aggregate.B.Replicate.total_lost in
  let after = Stats.mean outcome.B.after.B.aggregate.B.Replicate.total_lost in
  Alcotest.(check bool)
    (Printf.sprintf "after (%.0f) <= 1.25 * before (%.0f)" after before)
    true
    (after <= (1.25 *. before) +. 5.)

let test_timeout_variant_worse () =
  let _, traffic = small_arch () in
  let outcome = B.size_and_evaluate (quick_experiment traffic) in
  let timeout = Stats.mean outcome.B.timeout_variant.B.aggregate.B.Replicate.total_lost in
  let before = Stats.mean outcome.B.before.B.aggregate.B.Replicate.total_lost in
  Alcotest.(check bool) "timeout no better than plain baseline" true (timeout >= before -. 1.)

let test_large_budget_drives_losses_down () =
  (* Table 1's trend: post-sizing losses shrink as the budget grows. *)
  let _, traffic = small_arch () in
  let losses budget =
    let outcome = B.size_and_evaluate (quick_experiment ~budget traffic) in
    Stats.mean outcome.B.after.B.aggregate.B.Replicate.total_lost
  in
  let small = losses 8 in
  let large = losses 48 in
  Alcotest.(check bool)
    (Printf.sprintf "loss at budget 48 (%.0f) < loss at budget 8 (%.0f)" large small)
    true (large < small)

let test_stochastic_arbiter_usable () =
  let _, traffic = small_arch () in
  let sizing =
    B.Sizing.run { (B.Sizing.default_config ~budget:12) with B.Sizing.max_states = 48 } traffic
  in
  let arbiter = B.stochastic_arbiter sizing in
  let spec =
    {
      (B.Sim_run.default_spec ~traffic ~allocation:sizing.B.Sizing.allocation) with
      B.Sim_run.arbiter;
      horizon = 500.;
      warmup = 50.;
    }
  in
  let report = B.Sim_run.run spec in
  Alcotest.(check bool) "stochastic arbiter delivers" true (B.Metrics.total_delivered report > 0)

let test_outcome_report_prints () =
  let _, traffic = small_arch () in
  let outcome = B.size_and_evaluate (quick_experiment traffic) in
  let s = Format.asprintf "%a" B.pp_outcome outcome in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions totals" true
    (String.length s > 100 && contains "improvement" s)

let test_fig1_architecture_sizes () =
  let _, traffic = B.Fig1.create () in
  let sizing =
    B.Sizing.run { (B.Sizing.default_config ~budget:40) with B.Sizing.max_states = 48 } traffic
  in
  (* Every buffer of the paper's figure gets at least one word. *)
  Array.iter
    (fun e -> Alcotest.(check bool) "nonzero" true (e.B.Buffer_alloc.words >= 1))
    sizing.B.Sizing.allocation.B.Buffer_alloc.entries

let test_amba_pipeline () =
  let _, traffic = B.Amba.create () in
  let outcome =
    B.size_and_evaluate
      (B.experiment ~budget:24 ~replications:3 ~horizon:800.
         ~config:{ (B.Sizing.default_config ~budget:24) with B.Sizing.max_states = 64 }
         traffic)
  in
  Alcotest.(check bool) "AMBA sizing completes" true
    (B.Buffer_alloc.total outcome.B.sizing.B.Sizing.allocation = 24);
  (* Latency stats flow through the replication aggregate. *)
  let latencies = outcome.B.after.B.aggregate.B.Replicate.per_proc_latency in
  Alcotest.(check bool) "latency aggregated" true
    (Array.exists (fun s -> Stats.count s > 0 && Float.is_finite (Stats.mean s)) latencies)

let test_spec_parser_pipeline () =
  (* Architecture defined in the text format, sized end to end. *)
  let text =
    {|
bus west rate 3.0
bus east rate 2.5
proc A on west
proc B on west
proc C on east
bridge br west east
flow A -> C rate 1.4
flow C -> B rate 0.6
|}
  in
  match B.Spec_parser.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok (_, traffic) ->
      let outcome = B.size_and_evaluate (quick_experiment ~budget:10 traffic) in
      Alcotest.(check bool) "parsed architecture sizes and simulates" true
        (Stats.count outcome.B.after.B.aggregate.B.Replicate.total_lost = 3)

let test_weighted_experiment_protects_processor () =
  (* End-to-end check of the weighted-loss extension on the small arch:
     heavily weighting the busiest source should not increase its loss. *)
  let _, traffic = small_arch () in
  let base = B.size_and_evaluate (quick_experiment traffic) in
  let weighted_config =
    {
      (B.Sizing.default_config ~budget:12) with
      B.Sizing.max_states = 48;
      client_weight =
        (fun c ->
          match c with
          | B.Traffic.Proc_client 0 -> 8.
          | B.Traffic.Proc_client _ | B.Traffic.Bridge_client _ -> 1.);
    }
  in
  let weighted =
    B.size_and_evaluate
      (B.experiment ~budget:12 ~horizon:800. ~warmup:50. ~replications:3
         ~config:weighted_config traffic)
  in
  let loss_of o = (B.per_proc_mean_losses o.B.after).(0) in
  Alcotest.(check bool)
    (Printf.sprintf "weighted loss (%.0f) <= unweighted (%.0f) + slack" (loss_of weighted)
       (loss_of base))
    true
    (loss_of weighted <= loss_of base +. 10.)

let test_profiled_sizing_runs () =
  let _, traffic = small_arch () in
  let exp = quick_experiment traffic in
  let final, losses = B.profiled_sizing ~rounds:3 exp in
  Alcotest.(check int) "one loss per round" 3 (List.length losses);
  Alcotest.(check int) "budget preserved" 12 (B.Buffer_alloc.total final.B.Sizing.allocation);
  List.iter
    (fun loss -> Alcotest.(check bool) "losses finite" true (Float.is_finite loss && loss >= 0.))
    losses

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "full pipeline" `Slow test_full_pipeline_runs;
          Alcotest.test_case "sizing vs uniform" `Slow test_sizing_beats_or_matches_uniform;
          Alcotest.test_case "timeout variant worse" `Slow test_timeout_variant_worse;
          Alcotest.test_case "budget sweep trend" `Slow test_large_budget_drives_losses_down;
          Alcotest.test_case "stochastic arbiter" `Slow test_stochastic_arbiter_usable;
          Alcotest.test_case "report rendering" `Slow test_outcome_report_prints;
          Alcotest.test_case "fig1 sizing" `Quick test_fig1_architecture_sizes;
          Alcotest.test_case "amba pipeline + latency" `Slow test_amba_pipeline;
          Alcotest.test_case "spec-parser pipeline" `Slow test_spec_parser_pipeline;
          Alcotest.test_case "weighted experiment" `Slow test_weighted_experiment_protects_processor;
          Alcotest.test_case "profiled re-sizing" `Slow test_profiled_sizing_runs;
        ] );
    ]
