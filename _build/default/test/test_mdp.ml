(* Tests for the CTMDP machinery: model validation, policies, the
   occupation-measure LP, policy iteration, value iteration, K-switching,
   and the constrained wrapper.  The M/M/1/K queue provides analytic ground
   truth throughout. *)

module Vec = Bufsize_numeric.Vec
module Lp = Bufsize_numeric.Lp
module Birth_death = Bufsize_prob.Birth_death
module Rng = Bufsize_prob.Rng
module Ctmdp = Bufsize_mdp.Ctmdp
module Policy = Bufsize_mdp.Policy
module Lp_formulation = Bufsize_mdp.Lp_formulation
module Policy_iteration = Bufsize_mdp.Policy_iteration
module Value_iteration = Bufsize_mdp.Value_iteration
module Kswitching = Bufsize_mdp.Kswitching
module Constrained = Bufsize_mdp.Constrained

let check_close tol = Alcotest.(check (float tol))

(* --------------------------------------------------------------- models *)

(* M/M/1/K as a one-action-per-state CTMDP with loss cost: in the full state
   the arrival stream (rate lambda) is lost, so cost rate lambda there.
   Extra resource 0 = number of customers (occupied buffer). *)
let mm1k_ctmdp ~lambda ~mu ~k =
  let actions =
    Array.init (k + 1) (fun s ->
        let transitions =
          (if s < k then [ (s + 1, lambda) ] else [])
          @ (if s > 0 then [ (s - 1, mu) ] else [])
        in
        let cost = if s = k then lambda else 0. in
        [| { Ctmdp.label = "serve"; transitions; cost; extras = [| float_of_int s |] } |])
  in
  Ctmdp.create ~num_extras:1 actions

(* Admission control on an M/M/1/K: in states below K the controller may
   admit (arrivals flow) or reject (arrivals lost at cost lambda).  The full
   state always rejects.  One extra: occupancy. *)
let admission_ctmdp ~lambda ~mu ~k =
  let actions =
    Array.init (k + 1) (fun s ->
        let down = if s > 0 then [ (s - 1, mu) ] else [] in
        if s = k then
          [| { Ctmdp.label = "reject"; transitions = down; cost = lambda; extras = [| float_of_int s |] } |]
        else
          [|
            {
              Ctmdp.label = "admit";
              transitions = ((s + 1, lambda) :: down);
              cost = 0.;
              extras = [| float_of_int s |];
            };
            { Ctmdp.label = "reject"; transitions = down; cost = lambda; extras = [| float_of_int s |] };
          |])
  in
  Ctmdp.create ~num_extras:1 actions

(* A two-client shared-server CTMDP used for policy-vs-LP cross checks:
   state = (k1, k2) with capacity 1 each, actions = which nonempty queue to
   serve.  Cost = loss rate of full queues. *)
let two_client_ctmdp ~l1 ~l2 ~m1 ~m2 =
  let encode k1 k2 = (k1 * 2) + k2 in
  let actions =
    Array.init 4 (fun s ->
        let k1 = s / 2 and k2 = s mod 2 in
        let arrivals k1' k2' =
          (if k1 = 0 then [ (encode 1 k2', l1) ] else [])
          @ if k2 = 0 then [ (encode k1' 1, l2) ] else []
        in
        let cost = (if k1 = 1 then l1 else 0.) +. if k2 = 1 then l2 else 0. in
        let extras = [| float_of_int (k1 + k2) |] in
        let serve1 =
          {
            Ctmdp.label = "serve1";
            transitions = ((encode 0 k2, m1) :: arrivals k1 k2);
            cost;
            extras;
          }
        in
        let serve2 =
          {
            Ctmdp.label = "serve2";
            transitions = ((encode k1 0, m2) :: arrivals k1 k2);
            cost;
            extras;
          }
        in
        match (k1, k2) with
        | 0, 0 ->
            [| { Ctmdp.label = "idle"; transitions = arrivals 0 0; cost; extras } |]
        | 1, 0 -> [| serve1 |]
        | 0, 1 -> [| serve2 |]
        | _, _ -> [| serve1; serve2 |])
  in
  Ctmdp.create ~num_extras:1 actions

(* ---------------------------------------------------------------- Ctmdp *)

let test_ctmdp_validation () =
  Alcotest.check_raises "no actions" (Invalid_argument "Ctmdp.create: state 0 has no action")
    (fun () -> ignore (Ctmdp.create ~num_extras:0 [| [||] |]));
  Alcotest.check_raises "self loop" (Invalid_argument "Ctmdp.create: self loop transition")
    (fun () ->
      ignore
        (Ctmdp.create ~num_extras:0
           [| [| { Ctmdp.label = "a"; transitions = [ (0, 1.) ]; cost = 0.; extras = [||] } |] |]))

let test_ctmdp_accessors () =
  let m = mm1k_ctmdp ~lambda:1. ~mu:2. ~k:3 in
  Alcotest.(check int) "states" 4 (Ctmdp.num_states m);
  Alcotest.(check int) "extras" 1 (Ctmdp.num_extras m);
  Alcotest.(check int) "pairs" 4 (Ctmdp.total_state_actions m);
  check_close 1e-12 "max exit" 3. (Ctmdp.max_exit_rate m);
  let lo, hi = Ctmdp.cost_bounds m in
  check_close 1e-12 "cost lo" 0. lo;
  check_close 1e-12 "cost hi" 1. hi;
  Alcotest.(check bool) "unichain heuristic" true (Ctmdp.is_unichain_heuristic m)

let test_ctmdp_map_costs () =
  let m = mm1k_ctmdp ~lambda:1. ~mu:2. ~k:2 in
  let m2 = Ctmdp.map_costs m (fun _ _ act -> act.Ctmdp.cost +. 10.) in
  let _, hi = Ctmdp.cost_bounds m2 in
  check_close 1e-12 "shifted" 11. hi

(* --------------------------------------------------------------- Policy *)

let test_policy_deterministic () =
  let m = admission_ctmdp ~lambda:1. ~mu:2. ~k:2 in
  let p = Policy.deterministic m [| 0; 0; 0 |] in
  Alcotest.(check bool) "deterministic" true (Policy.is_deterministic p);
  check_close 1e-12 "prob" 1. (Policy.prob p 0 0);
  Alcotest.(check (list int)) "no randomized states" [] (Policy.randomized_states p)

let test_policy_randomized_validation () =
  let m = admission_ctmdp ~lambda:1. ~mu:2. ~k:2 in
  (match Policy.randomized m [| [| 0.5; 0.2 |]; [| 1.; 0. |]; [| 1. |] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected normalization failure")

let test_policy_mm1k_evaluation () =
  (* The single-action M/M/1/K policy's gain must equal the closed-form
     loss rate, and the occupancy extra must equal the closed-form mean. *)
  let lambda = 2. and mu = 3. in
  let k = 4 in
  let m = mm1k_ctmdp ~lambda ~mu ~k in
  let p = Policy.deterministic m (Array.make (k + 1) 0) in
  let e = Policy.evaluate m p in
  check_close 1e-9 "gain = loss rate" (Birth_death.Mm1k.loss_rate ~lambda ~mu ~k) e.Policy.gain;
  check_close 1e-9 "extra = mean customers"
    (Birth_death.Mm1k.mean_customers ~lambda ~mu ~k)
    e.Policy.extras.(0)

let test_policy_of_occupation_roundtrip () =
  let m = admission_ctmdp ~lambda:1.5 ~mu:2. ~k:3 in
  let p = Policy.uniform m in
  let e = Policy.evaluate m p in
  let p2 = Policy.of_occupation m e.Policy.occupation in
  for s = 0 to Ctmdp.num_states m - 1 do
    let a = Policy.action_probs p s and b = Policy.action_probs p2 s in
    Alcotest.(check bool) "recovered" true (Vec.approx_equal ~tol:1e-9 a b)
  done

let test_policy_sample_action () =
  let m = admission_ctmdp ~lambda:1. ~mu:2. ~k:2 in
  let p = Policy.randomized m [| [| 0.3; 0.7 |]; [| 1.; 0. |]; [| 1. |] |] in
  let rng = Rng.create 11 in
  let counts = [| 0; 0 |] in
  for _ = 1 to 20_000 do
    let a = Policy.sample_action rng p 0 in
    counts.(a) <- counts.(a) + 1
  done;
  check_close 0.02 "sampling matches mix" 0.3 (float_of_int counts.(0) /. 20_000.)

(* --------------------------------------------------------- LP vs theory *)

let test_lp_mm1k_gain () =
  (* With a single action everywhere the LP has a unique policy: its value
     must be the M/M/1/K loss rate. *)
  let lambda = 2. and mu = 3. in
  let k = 5 in
  let m = mm1k_ctmdp ~lambda ~mu ~k in
  match Lp_formulation.solve m with
  | Lp_formulation.Optimal s ->
      check_close 1e-7 "gain = closed form" (Birth_death.Mm1k.loss_rate ~lambda ~mu ~k)
        s.Lp_formulation.gain
  | _ -> Alcotest.fail "expected optimal"

let test_lp_occupation_is_distribution () =
  let m = admission_ctmdp ~lambda:2. ~mu:2. ~k:4 in
  match Lp_formulation.solve m with
  | Lp_formulation.Optimal s ->
      let total =
        Array.fold_left (fun acc row -> acc +. Array.fold_left ( +. ) 0. row) 0.
          s.Lp_formulation.occupation
      in
      check_close 1e-7 "sums to one" 1. total
  | _ -> Alcotest.fail "expected optimal"

let test_lp_unconstrained_admission () =
  (* Without constraints, admitting everywhere minimizes loss (served work
     reduces loss), so the optimal gain is the M/M/1/K loss rate. *)
  let lambda = 2. and mu = 3. in
  let k = 4 in
  let m = admission_ctmdp ~lambda ~mu ~k in
  match Lp_formulation.solve m with
  | Lp_formulation.Optimal s ->
      check_close 1e-7 "admit-all optimal" (Birth_death.Mm1k.loss_rate ~lambda ~mu ~k)
        s.Lp_formulation.gain
  | _ -> Alcotest.fail "expected optimal"

let test_lp_agrees_with_policy_iteration () =
  let m = two_client_ctmdp ~l1:1. ~l2:2. ~m1:3. ~m2:2.5 in
  let lp_gain =
    match Lp_formulation.solve m with
    | Lp_formulation.Optimal s -> s.Lp_formulation.gain
    | _ -> Alcotest.fail "LP failed"
  in
  let pi = Policy_iteration.solve m in
  Alcotest.(check bool) "PI converged" true pi.Policy_iteration.converged;
  check_close 1e-7 "same gain" pi.Policy_iteration.gain lp_gain

let test_lp_pi_agreement_property () =
  (* Property: random admission-control instances — LP and PI agree. *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* lambda = float_range 0.5 4. in
        let* mu = float_range 0.5 4. in
        let* k = int_range 2 6 in
        return (lambda, mu, k))
  in
  let prop (lambda, mu, k) =
    let m = admission_ctmdp ~lambda ~mu ~k in
    match Lp_formulation.solve m with
    | Lp_formulation.Optimal s ->
        let pi = Policy_iteration.solve m in
        pi.Policy_iteration.converged
        && Float.abs (pi.Policy_iteration.gain -. s.Lp_formulation.gain) < 1e-6
    | _ -> false
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:60 ~name:"LP gain = PI gain" gen prop)

let test_lp_constrained_occupancy () =
  (* Bound the average occupancy below its unconstrained value: the gain can
     only get worse and the constraint must hold with near-equality when
     binding. *)
  let lambda = 3. and mu = 2. in
  let k = 5 in
  let m = admission_ctmdp ~lambda ~mu ~k in
  let unconstrained_extra, unconstrained_gain =
    match Lp_formulation.solve m with
    | Lp_formulation.Optimal s -> (s.Lp_formulation.extras.(0), s.Lp_formulation.gain)
    | _ -> Alcotest.fail "unconstrained failed"
  in
  let budget = unconstrained_extra /. 2. in
  match
    Lp_formulation.solve ~extra_bounds:[| { Lp_formulation.sense = Lp.Le; value = budget } |] m
  with
  | Lp_formulation.Optimal s ->
      Alcotest.(check bool) "budget respected" true (s.Lp_formulation.extras.(0) <= budget +. 1e-7);
      Alcotest.(check bool) "gain worsens" true (s.Lp_formulation.gain >= unconstrained_gain -. 1e-9)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible_constraint () =
  (* Occupancy >= k+1 is impossible. *)
  let m = admission_ctmdp ~lambda:1. ~mu:1. ~k:3 in
  match
    Lp_formulation.solve ~extra_bounds:[| { Lp_formulation.sense = Lp.Ge; value = 10. } |] m
  with
  | Lp_formulation.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_lp_engines_agree () =
  (* The dense tableau and the sparse revised simplex must find the same
     optimal gain on CTMDP occupation LPs. *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* lambda = float_range 0.5 4. in
        let* mu = float_range 0.5 4. in
        let* k = int_range 2 6 in
        let* frac = float_range 0.4 0.9 in
        return (lambda, mu, k, frac))
  in
  let prop (lambda, mu, k, frac) =
    let m = admission_ctmdp ~lambda ~mu ~k in
    match Lp_formulation.solve ~engine:Lp.Dense m with
    | Lp_formulation.Optimal d -> (
        let bounds =
          [| { Lp_formulation.sense = Lp.Le; value = d.Lp_formulation.extras.(0) *. frac } |]
        in
        match
          ( Lp_formulation.solve ~extra_bounds:bounds ~engine:Lp.Dense m,
            Lp_formulation.solve ~extra_bounds:bounds ~engine:Lp.Revised m )
        with
        | Lp_formulation.Optimal a, Lp_formulation.Optimal b ->
            Float.abs (a.Lp_formulation.gain -. b.Lp_formulation.gain) < 1e-6
        | Lp_formulation.Infeasible, Lp_formulation.Infeasible -> true
        | _, _ -> false)
    | _ -> false
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:60 ~name:"dense = revised on CTMDPs" gen prop)

let test_lp_joint_matches_separate () =
  (* Two independent copies without shared bounds: the joint solve must
     reproduce the separate gains. *)
  let m1 = mm1k_ctmdp ~lambda:2. ~mu:3. ~k:3 in
  let m2 = mm1k_ctmdp ~lambda:1. ~mu:4. ~k:4 in
  let g1 = Birth_death.Mm1k.loss_rate ~lambda:2. ~mu:3. ~k:3 in
  let g2 = Birth_death.Mm1k.loss_rate ~lambda:1. ~mu:4. ~k:4 in
  match Lp_formulation.solve_joint [| m1; m2 |] with
  | Lp_formulation.Joint_optimal j ->
      check_close 1e-7 "component 1" g1 j.Lp_formulation.components.(0).Lp_formulation.gain;
      check_close 1e-7 "component 2" g2 j.Lp_formulation.components.(1).Lp_formulation.gain;
      check_close 1e-7 "total" (g1 +. g2) j.Lp_formulation.total_gain
  | _ -> Alcotest.fail "expected joint optimal"

let test_lp_joint_shared_budget () =
  (* Two admission queues sharing a tight occupancy budget: the shared
     constraint must hold for the sum and the solution should allocate more
     to the queue where occupancy buys more loss reduction. *)
  let m1 = admission_ctmdp ~lambda:3. ~mu:2. ~k:4 in
  let m2 = admission_ctmdp ~lambda:1. ~mu:2. ~k:4 in
  match
    Lp_formulation.solve_joint
      ~shared_bounds:[| { Lp_formulation.sense = Lp.Le; value = 1.0 } |]
      [| m1; m2 |]
  with
  | Lp_formulation.Joint_optimal j ->
      Alcotest.(check bool) "shared budget" true (j.Lp_formulation.shared_extras.(0) <= 1.0 +. 1e-7);
      Alcotest.(check bool) "heavy queue gets more" true
        (j.Lp_formulation.components.(0).Lp_formulation.extras.(0)
        >= j.Lp_formulation.components.(1).Lp_formulation.extras.(0) -. 1e-7)
  | _ -> Alcotest.fail "expected joint optimal"

(* ----------------------------------------------------- Policy iteration *)

let test_pi_mm1k () =
  let lambda = 2. and mu = 3. in
  let k = 5 in
  let m = mm1k_ctmdp ~lambda ~mu ~k in
  let r = Policy_iteration.solve m in
  Alcotest.(check bool) "converged" true r.Policy_iteration.converged;
  check_close 1e-9 "gain" (Birth_death.Mm1k.loss_rate ~lambda ~mu ~k) r.Policy_iteration.gain

let test_pi_improves_over_initial () =
  let m = two_client_ctmdp ~l1:2. ~l2:0.5 ~m1:3. ~m2:3. in
  (* Evaluate the "always serve client 2 if possible" style initial policy. *)
  let initial = Array.make 4 0 in
  let g0, _ = Policy_iteration.evaluate_deterministic m initial in
  let r = Policy_iteration.solve ~initial m in
  Alcotest.(check bool) "no worse than initial" true (r.Policy_iteration.gain <= g0 +. 1e-9)

let test_pi_evaluation_satisfies_equations () =
  let m = admission_ctmdp ~lambda:2. ~mu:1.5 ~k:3 in
  let choice = [| 0; 0; 1; 0 |] in
  let g, h = Policy_iteration.evaluate_deterministic m choice in
  (* Check c - g + Q h = 0 row by row. *)
  for s = 0 to Ctmdp.num_states m - 1 do
    let act = Ctmdp.action m s choice.(s) in
    let exit = Ctmdp.exit_rate act in
    let flow =
      List.fold_left (fun acc (j, r) -> acc +. (r *. h.(j))) 0. act.Ctmdp.transitions
    in
    let residual = act.Ctmdp.cost -. g +. flow -. (exit *. h.(s)) in
    check_close 1e-9 "evaluation equation" 0. residual
  done;
  check_close 1e-12 "normalized" 0. h.(0)

(* ------------------------------------------------------ Value iteration *)

let test_vi_converges () =
  let m = admission_ctmdp ~lambda:2. ~mu:3. ~k:4 in
  let r = Value_iteration.solve ~alpha:0.5 m in
  Alcotest.(check bool) "converged" true r.Value_iteration.converged;
  Alcotest.(check bool) "values finite and nonnegative" true
    (Array.for_all (fun v -> Float.is_finite v && v >= -1e-9) r.Value_iteration.values)

let test_vi_discount_monotonicity () =
  (* Stronger discounting means smaller total discounted cost. *)
  let m = admission_ctmdp ~lambda:2. ~mu:3. ~k:4 in
  let v1 = Value_iteration.solve ~alpha:0.5 m in
  let v2 = Value_iteration.solve ~alpha:2.0 m in
  Alcotest.(check bool) "componentwise smaller" true
    (Array.for_all2 (fun a b -> b <= a +. 1e-9) v1.Value_iteration.values v2.Value_iteration.values)

let test_vi_rejects_bad_alpha () =
  let m = admission_ctmdp ~lambda:1. ~mu:1. ~k:2 in
  Alcotest.check_raises "alpha <= 0"
    (Invalid_argument "Value_iteration.solve: alpha must be positive") (fun () ->
      ignore (Value_iteration.solve ~alpha:0. m))

(* ---------------------------------------------------------- K-switching *)

let test_kswitching_unconstrained_deterministic () =
  (* Unconstrained LP basic optimum: no randomization (K = 0). *)
  let m = admission_ctmdp ~lambda:2. ~mu:3. ~k:4 in
  match Lp_formulation.solve m with
  | Lp_formulation.Optimal s ->
      let a =
        Kswitching.of_occupation ~constraints:0 m s.Lp_formulation.occupation
      in
      Alcotest.(check bool) "within bound" true a.Kswitching.within_bound;
      Alcotest.(check int) "no switches" 0 a.Kswitching.num_randomized
  | _ -> Alcotest.fail "LP failed"

let test_kswitching_constrained_bound () =
  (* One binding constraint: at most one randomized state (K = 1). *)
  let m = admission_ctmdp ~lambda:3. ~mu:2. ~k:5 in
  let unconstrained =
    match Lp_formulation.solve m with
    | Lp_formulation.Optimal s -> s.Lp_formulation.extras.(0)
    | _ -> Alcotest.fail "LP failed"
  in
  match
    Lp_formulation.solve
      ~extra_bounds:[| { Lp_formulation.sense = Lp.Le; value = unconstrained *. 0.6 } |]
      m
  with
  | Lp_formulation.Optimal s ->
      let a = Kswitching.analyze ~constraints:1 m s.Lp_formulation.policy in
      Alcotest.(check bool) "K-switching bound" true a.Kswitching.within_bound
  | _ -> Alcotest.fail "constrained LP failed"

let test_kswitching_property () =
  (* Property: random binding occupancy constraints keep randomization <= 1
     state on admission instances. *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* lambda = float_range 1. 4. in
        let* mu = float_range 1. 4. in
        let* k = int_range 3 6 in
        let* frac = float_range 0.3 0.9 in
        return (lambda, mu, k, frac))
  in
  let prop (lambda, mu, k, frac) =
    let m = admission_ctmdp ~lambda ~mu ~k in
    match Lp_formulation.solve m with
    | Lp_formulation.Optimal s0 -> (
        let budget = s0.Lp_formulation.extras.(0) *. frac in
        match
          Lp_formulation.solve
            ~extra_bounds:[| { Lp_formulation.sense = Lp.Le; value = budget } |]
            m
        with
        | Lp_formulation.Optimal s ->
            let a = Kswitching.analyze ~constraints:1 m s.Lp_formulation.policy in
            a.Kswitching.num_randomized <= 1
        | Lp_formulation.Infeasible -> true (* budget below the floor occupancy *)
        | Lp_formulation.Unbounded -> false)
    | _ -> false
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:50 ~name:"1-switching" gen prop)

let test_pi_not_worse_than_random_policies () =
  (* Optimality spot check: the PI gain is no worse than any of a sample of
     random deterministic policies. *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* l1 = float_range 0.5 3. in
        let* l2 = float_range 0.5 3. in
        let* m1 = float_range 1. 4. in
        let* m2 = float_range 1. 4. in
        let* choices = array_size (return 4) (int_range 0 1) in
        return (l1, l2, m1, m2, choices))
  in
  let prop (l1, l2, m1, m2, choices) =
    let m = two_client_ctmdp ~l1 ~l2 ~m1 ~m2 in
    let clamped =
      Array.mapi (fun s a -> if a < Ctmdp.num_actions m s then a else 0) choices
    in
    let random_gain, _ = Policy_iteration.evaluate_deterministic m clamped in
    let opt = Policy_iteration.solve m in
    opt.Policy_iteration.converged && opt.Policy_iteration.gain <= random_gain +. 1e-9
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:100 ~name:"PI optimality" gen prop)

let test_lp_budget_monotonicity_property () =
  (* Tighter occupancy budgets can only worsen the optimal loss. *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* lambda = float_range 1. 4. in
        let* mu = float_range 1. 4. in
        let* frac1 = float_range 0.3 0.6 in
        let* frac2 = float_range 0.6 0.95 in
        return (lambda, mu, frac1, frac2))
  in
  let prop (lambda, mu, frac1, frac2) =
    let m = admission_ctmdp ~lambda ~mu ~k:4 in
    match Lp_formulation.solve m with
    | Lp_formulation.Optimal s0 -> (
        let base = s0.Lp_formulation.extras.(0) in
        let solve_at frac =
          Lp_formulation.solve
            ~extra_bounds:[| { Lp_formulation.sense = Lp.Le; value = base *. frac } |]
            m
        in
        match (solve_at frac1, solve_at frac2) with
        | Lp_formulation.Optimal tight, Lp_formulation.Optimal loose ->
            tight.Lp_formulation.gain >= loose.Lp_formulation.gain -. 1e-7
        | Lp_formulation.Infeasible, _ -> true (* tight budget below floor *)
        | _, _ -> false)
    | _ -> false
  in
  QCheck.Test.check_exn (QCheck.Test.make ~count:60 ~name:"budget monotonicity" gen prop)

let test_vi_value_bounded_by_cost_over_alpha () =
  (* Discounted value of a cost-rate process is bounded by c_max / alpha. *)
  let m = admission_ctmdp ~lambda:3. ~mu:2. ~k:4 in
  let alpha = 0.7 in
  let r = Value_iteration.solve ~alpha m in
  let _, c_max = Ctmdp.cost_bounds m in
  Alcotest.(check bool) "bounded" true
    (Array.for_all (fun v -> v <= (c_max /. alpha) +. 1e-6) r.Value_iteration.values)

(* ---------------------------------------------------------- Constrained *)

let test_constrained_wrapper () =
  let m = admission_ctmdp ~lambda:3. ~mu:2. ~k:5 in
  match Constrained.solve ~bounds:[| { Lp_formulation.sense = Lp.Le; value = 1.2 } |] m with
  | Constrained.Feasible r ->
      check_close 1e-6 "gain check consistent" r.Constrained.solved.Lp_formulation.gain
        r.Constrained.policy_gain_check;
      Alcotest.(check bool) "switching within bound" true
        r.Constrained.switching.Kswitching.within_bound
  | _ -> Alcotest.fail "expected feasible"

let test_constrained_lagrangian () =
  let m = admission_ctmdp ~lambda:3. ~mu:2. ~k:5 in
  let unconstrained =
    match Lp_formulation.solve m with
    | Lp_formulation.Optimal s -> s.Lp_formulation.extras.(0)
    | _ -> Alcotest.fail "LP failed"
  in
  let budget = unconstrained *. 0.5 in
  match Constrained.solve_lagrangian ~budget ~extra:0 m with
  | Some (r, price) ->
      Alcotest.(check bool) "nonnegative price" true (price >= 0.);
      let eval = Policy.evaluate m r.Policy_iteration.policy in
      Alcotest.(check bool) "budget met" true (eval.Policy.extras.(0) <= budget +. 1e-6)
  | None -> Alcotest.fail "lagrangian failed"

let test_constrained_lagrangian_slack () =
  (* A generous budget: price 0 and the unconstrained optimum. *)
  let m = admission_ctmdp ~lambda:1. ~mu:3. ~k:4 in
  match Constrained.solve_lagrangian ~budget:100. ~extra:0 m with
  | Some (_, price) -> check_close 1e-12 "zero price" 0. price
  | None -> Alcotest.fail "expected result"

let () =
  Alcotest.run "mdp"
    [
      ( "ctmdp",
        [
          Alcotest.test_case "validation" `Quick test_ctmdp_validation;
          Alcotest.test_case "accessors" `Quick test_ctmdp_accessors;
          Alcotest.test_case "map_costs" `Quick test_ctmdp_map_costs;
        ] );
      ( "policy",
        [
          Alcotest.test_case "deterministic" `Quick test_policy_deterministic;
          Alcotest.test_case "randomized validation" `Quick test_policy_randomized_validation;
          Alcotest.test_case "MM1K evaluation = closed form" `Quick test_policy_mm1k_evaluation;
          Alcotest.test_case "occupation roundtrip" `Quick test_policy_of_occupation_roundtrip;
          Alcotest.test_case "action sampling" `Quick test_policy_sample_action;
        ] );
      ( "lp-formulation",
        [
          Alcotest.test_case "MM1K gain" `Quick test_lp_mm1k_gain;
          Alcotest.test_case "occupation is a distribution" `Quick test_lp_occupation_is_distribution;
          Alcotest.test_case "unconstrained admission" `Quick test_lp_unconstrained_admission;
          Alcotest.test_case "LP = PI on two-client model" `Quick test_lp_agrees_with_policy_iteration;
          Alcotest.test_case "LP = PI (property)" `Quick test_lp_pi_agreement_property;
          Alcotest.test_case "constrained occupancy" `Quick test_lp_constrained_occupancy;
          Alcotest.test_case "infeasible constraint" `Quick test_lp_infeasible_constraint;
          Alcotest.test_case "joint = separate" `Quick test_lp_joint_matches_separate;
          Alcotest.test_case "joint shared budget" `Quick test_lp_joint_shared_budget;
          Alcotest.test_case "dense = revised engines (property)" `Quick test_lp_engines_agree;
        ] );
      ( "policy-iteration",
        [
          Alcotest.test_case "MM1K gain" `Quick test_pi_mm1k;
          Alcotest.test_case "improves over initial" `Quick test_pi_improves_over_initial;
          Alcotest.test_case "evaluation equations" `Quick test_pi_evaluation_satisfies_equations;
        ] );
      ( "value-iteration",
        [
          Alcotest.test_case "converges" `Quick test_vi_converges;
          Alcotest.test_case "discount monotonicity" `Quick test_vi_discount_monotonicity;
          Alcotest.test_case "rejects bad alpha" `Quick test_vi_rejects_bad_alpha;
          Alcotest.test_case "value bound c/alpha" `Quick test_vi_value_bounded_by_cost_over_alpha;
        ] );
      ( "optimality-properties",
        [
          Alcotest.test_case "PI beats random policies (property)" `Quick
            test_pi_not_worse_than_random_policies;
          Alcotest.test_case "budget monotonicity (property)" `Quick
            test_lp_budget_monotonicity_property;
        ] );
      ( "k-switching",
        [
          Alcotest.test_case "unconstrained deterministic" `Quick
            test_kswitching_unconstrained_deterministic;
          Alcotest.test_case "constrained bound" `Quick test_kswitching_constrained_bound;
          Alcotest.test_case "1-switching (property)" `Quick test_kswitching_property;
        ] );
      ( "constrained",
        [
          Alcotest.test_case "wrapper diagnostics" `Quick test_constrained_wrapper;
          Alcotest.test_case "lagrangian decomposition" `Quick test_constrained_lagrangian;
          Alcotest.test_case "lagrangian slack budget" `Quick test_constrained_lagrangian_slack;
        ] );
    ]
