test/test_sim.ml: Alcotest Array Bufsize_numeric Bufsize_prob Bufsize_sim Bufsize_soc Float List
