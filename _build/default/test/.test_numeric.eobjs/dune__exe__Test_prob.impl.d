test/test_prob.ml: Alcotest Array Bufsize_numeric Bufsize_prob Float QCheck
