test/test_integration.ml: Alcotest Array Bufsize Bufsize_numeric Float Format List Printf String
