test/test_soc.ml: Alcotest Array Bufsize_mdp Bufsize_prob Bufsize_soc Float Int List Printf QCheck String
