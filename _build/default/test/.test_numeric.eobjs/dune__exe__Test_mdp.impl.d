test/test_mdp.ml: Alcotest Array Bufsize_mdp Bufsize_numeric Bufsize_prob Float List QCheck
