test/test_numeric.ml: Alcotest Array Bufsize_numeric Float List QCheck
