(* bufsize — command-line front end.

   Subcommands:
     info        describe a built-in architecture (topology, traffic, split)
     size        run the CTMDP buffer sizing and print the allocation
     simulate    simulate one allocation policy and print loss statistics
     experiment  the paper's before/after/timeout comparison
     kron        exact monolithic solve via the Kronecker/SAN path vs the split
     topo        mesh/torus NoC sizing with static-vs-DAMQ buffer sharing
     verify      differential oracles over random instances (fuzz harness)
     serve       long-running sizing daemon on a Unix socket (NDJSON)
     request     one request to a running daemon, with retry/backoff

   Architectures: fig1 (the paper's sample), netproc (the 17-processor
   evaluation platform), small (a fast two-bus demo). *)

module B = Bufsize
open Cmdliner

(* ------------------------------------------------------- architectures *)

let small_arch () =
  let b = B.Topology.builder () in
  let bus0 = B.Topology.add_bus b ~service_rate:3.0 "west" in
  let bus1 = B.Topology.add_bus b ~service_rate:3.0 "east" in
  let p0 = B.Topology.add_processor b ~bus:bus0 "A" in
  let p1 = B.Topology.add_processor b ~bus:bus0 "B" in
  let p2 = B.Topology.add_processor b ~bus:bus1 "C" in
  let p3 = B.Topology.add_processor b ~bus:bus1 "D" in
  ignore (B.Topology.add_bridge b ~between:(bus0, bus1) "br");
  let topo = B.Topology.finalize b in
  let traffic =
    B.Traffic.create topo
      [
        { B.Traffic.src = p0; dst = p2; rate = 1.3 };
        { B.Traffic.src = p1; dst = p0; rate = 0.8 };
        { B.Traffic.src = p2; dst = p3; rate = 1.1 };
        { B.Traffic.src = p3; dst = p1; rate = 0.7 };
      ]
  in
  (topo, traffic)

let load_arch arch file =
  match file with
  | Some path -> (
      match Bufsize_soc.Spec_parser.parse_file path with
      | Ok x -> x
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 1)
  | None -> (
      match arch with
      | "fig1" -> B.Fig1.create ()
      | "netproc" -> B.Netproc.create ()
      | "amba" -> B.Amba.create ()
      | "small" -> small_arch ()
      | other ->
          Format.eprintf "error: unknown architecture %S (use fig1, netproc, amba or small)@."
            other;
          exit 1)

let arch_arg =
  let doc = "Built-in architecture: fig1, netproc, amba, or small." in
  Arg.(value & opt string "small" & info [ "a"; "arch" ] ~docv:"ARCH" ~doc)

let file_arg =
  let doc = "Architecture description file (overrides --arch; see the Spec_parser format)." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let budget_arg =
  let doc = "Total buffer budget in words." in
  Arg.(value & opt int 16 & info [ "b"; "budget" ] ~docv:"WORDS" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let horizon_arg =
  let doc = "Simulation horizon (time units)." in
  Arg.(value & opt float 2000. & info [ "horizon" ] ~docv:"T" ~doc)

let replications_arg =
  let doc = "Number of independent replications." in
  Arg.(value & opt int 10 & info [ "r"; "replications" ] ~docv:"N" ~doc)

let max_states_arg =
  let doc = "Per-subsystem CTMDP state-space cap." in
  Arg.(value & opt int 64 & info [ "max-states" ] ~docv:"N" ~doc)

let weights_arg =
  let doc =
    "Loss-importance weight for a processor, as NAME=FACTOR (repeatable). Weighted processors \
     get finer models, costlier losses and more buffer space."
  in
  Arg.(value & opt_all string [] & info [ "w"; "weight" ] ~docv:"NAME=FACTOR" ~doc)

(* Turn --weight P4=10 flags into a Sizing client-weight function. *)
let weight_fn topo specs =
  let table = Hashtbl.create 8 in
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | None ->
          Format.eprintf "error: malformed weight %S (expected NAME=FACTOR)@." spec;
          exit 1
      | Some i -> (
          let name = String.sub spec 0 i in
          let factor = String.sub spec (i + 1) (String.length spec - i - 1) in
          match (B.Topology.find_processor topo name, float_of_string_opt factor) with
          | exception Not_found ->
              Format.eprintf "error: unknown processor %S in weight@." name;
              exit 1
          | _, None | _, Some 0. ->
              Format.eprintf "error: bad weight factor %S@." factor;
              exit 1
          | p, Some f -> Hashtbl.replace table p f))
    specs;
  fun client ->
    match client with
    | B.Traffic.Proc_client p -> Option.value ~default:1. (Hashtbl.find_opt table p)
    | B.Traffic.Bridge_client _ -> 1.

(* ------------------------------------------------------------ telemetry *)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON of the run to $(docv) (loadable in Perfetto / \
     chrome://tracing, one track per domain). Implies metric collection."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Collect metrics and print a summary table to stderr after the run." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_json_arg =
  let doc = "Collect metrics and write them as a JSON object to $(docv) ($(b,-) = stdout)." in
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE" ~doc)

(* A long-running subcommand killed with SIGINT/SIGTERM would otherwise
   die without running [at_exit] — losing the trace/metrics files the
   user asked for.  Converting the signal into [exit] routes it through
   the exporters ([serve] overrides these with its own drain-first
   handlers). *)
let install_exit_on_signals () =
  List.iter
    (fun signum ->
      try Sys.set_signal signum (Sys.Signal_handle (fun s -> Stdlib.exit (128 + s)))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(* Exporters run from [at_exit] so they fire even on the [exit 1] paths
   (e.g. verify failures), matching the BUFSIZE_TRACE env-var behaviour. *)
let setup_telemetry trace metrics metrics_json =
  install_exit_on_signals ();
  if trace <> None then B.Obs.enable_spans ();
  if trace <> None || metrics || metrics_json <> None then B.Obs.enable_metrics ();
  if trace <> None || metrics || metrics_json <> None then
    at_exit (fun () ->
        Option.iter B.Obs.write_chrome_trace trace;
        (match metrics_json with
        | None -> ()
        | Some "-" -> print_endline (B.Obs.metrics_json ())
        | Some path ->
            let oc = open_out path in
            output_string oc (B.Obs.metrics_json ());
            output_char oc '\n';
            close_out oc);
        if metrics then Format.eprintf "%a@." B.Obs.pp_summary ())

(* ----------------------------------------------------------------- info *)

let info_cmd =
  let run arch file =
    let topo, traffic = load_arch arch file in
    Format.printf "%a@.@.%a@.@." B.Topology.pp topo B.Traffic.pp traffic;
    let split = B.Splitting.split traffic in
    Format.printf "%a@." (fun ppf -> B.Splitting.pp ppf topo) split
  in
  let doc = "Describe a built-in architecture: topology, traffic, bridge split." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ arch_arg $ file_arg)

(* ----------------------------------------------------------------- size *)

let size_cmd =
  let health_arg =
    let doc = "Print the per-subsystem solver health report after the allocation." in
    Arg.(value & flag & info [ "health" ] ~doc)
  in
  let health_json_arg =
    let doc = "Print the solver health report as JSON (implies machine-readable output only for the report)." in
    Arg.(value & flag & info [ "health-json" ] ~doc)
  in
  let json_arg =
    let doc =
      "Print the allocation as a single JSON object and exit — byte-identical to the \"result\" \
       field of the daemon's $(b,size) reply (the same serializer renders both)."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run arch file budget max_states weights health health_json json trace metrics metrics_json
      =
    setup_telemetry trace metrics metrics_json;
    let topo, traffic = load_arch arch file in
    let config =
      {
        (B.Sizing.default_config ~budget) with
        B.Sizing.max_states;
        client_weight = weight_fn topo weights;
      }
    in
    let r = B.Sizing.run config traffic in
    if json then begin
      print_endline (B.Json.encode (B.Serve.sizing_core_json traffic r));
      exit 0
    end;
    Format.printf "%a@.@.%a@.@." B.Sizing.pp_summary r
      (fun ppf -> B.Buffer_alloc.pp topo ppf)
      r.B.Sizing.allocation;
    Array.iter
      (fun (sol : B.Sizing.subsystem_solution) ->
        let sub = B.Bus_model.subsystem sol.B.Sizing.model in
        Format.printf "subsystem %s: %a@." sub.B.Splitting.bus_name B.Mdp.Kswitching.pp
          sol.B.Sizing.switching)
      r.B.Sizing.solutions;
    if health then Format.printf "@.%a@." B.Resilience.pp_health r.B.Sizing.health;
    if health_json then begin
      (* The health report plus the warm-start / solve-cache counters of
         this process — the observability surface of the incremental
         engine (cache.* and simplex_revised.warm_* in the metrics
         registry mirror these). *)
      let warm_acc, warm_rej = B.Numeric.Simplex_revised.warm_stats () in
      let lp_hits, lp_misses = B.Numeric.Lp.cache_stats () in
      let sz_hits, sz_misses = B.Sizing.cache_stats () in
      Format.printf
        "@.{\"health\":%s,\"solver_stats\":{\"lp_cache\":{\"hits\":%d,\"misses\":%d},\"sizing_cache\":{\"hits\":%d,\"misses\":%d},\"warm_start\":{\"accepted\":%d,\"rejected\":%d}}}@."
        (B.Resilience.health_to_json r.B.Sizing.health)
        lp_hits lp_misses sz_hits sz_misses warm_acc warm_rej
    end
  in
  let doc = "Run the CTMDP buffer sizing and print the allocation." in
  Cmd.v (Cmd.info "size" ~doc)
    Term.(
      const run $ arch_arg $ file_arg $ budget_arg $ max_states_arg $ weights_arg $ health_arg
      $ health_json_arg $ json_arg $ trace_arg $ metrics_arg $ metrics_json_arg)

(* ------------------------------------------------------------- simulate *)

let simulate_cmd =
  let policy_arg =
    let doc = "Allocation policy: uniform, proportional, or ctmdp." in
    Arg.(value & opt string "uniform" & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)
  in
  let timeout_arg =
    let doc = "Timeout threshold for the timeout drop policy (0 = off)." in
    Arg.(value & opt float 0. & info [ "timeout" ] ~docv:"T" ~doc)
  in
  let run arch file budget policy timeout horizon seed max_states trace metrics metrics_json =
    setup_telemetry trace metrics metrics_json;
    let _, traffic = load_arch arch file in
    let allocation =
      match policy with
      | "uniform" -> B.Buffer_alloc.uniform traffic ~budget
      | "proportional" -> B.Buffer_alloc.traffic_proportional traffic ~budget
      | "ctmdp" ->
          let config = { (B.Sizing.default_config ~budget) with B.Sizing.max_states } in
          (B.Sizing.run config traffic).B.Sizing.allocation
      | other -> invalid_arg (Printf.sprintf "unknown policy %S" other)
    in
    let spec =
      {
        (B.Sim_run.default_spec ~traffic ~allocation) with
        B.Sim_run.horizon;
        seed;
        timeout = (if timeout > 0. then Some (B.Sim_run.Global timeout) else None);
      }
    in
    let report = B.Sim_run.run spec in
    Format.printf "%a@." B.Metrics.pp report
  in
  let doc = "Simulate one allocation policy and print loss statistics." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ arch_arg $ file_arg $ budget_arg $ policy_arg $ timeout_arg $ horizon_arg
      $ seed_arg $ max_states_arg $ trace_arg $ metrics_arg $ metrics_json_arg)

(* ------------------------------------------------------------------ dot *)

let dot_cmd =
  let annotate_arg =
    let doc = "Annotate nodes with a CTMDP allocation of this many words (0 = bare graph)." in
    Arg.(value & opt int 0 & info [ "annotate" ] ~docv:"WORDS" ~doc)
  in
  let run arch file annotate max_states =
    let topo, traffic = load_arch arch file in
    if annotate <= 0 then print_string (B.Dot.topology topo)
    else begin
      let config =
        { (B.Sizing.default_config ~budget:annotate) with B.Sizing.max_states }
      in
      let r = B.Sizing.run config traffic in
      print_string (B.Dot.with_allocation topo traffic r.B.Sizing.allocation)
    end
  in
  let doc = "Emit the architecture as Graphviz DOT (optionally with a sized allocation)." in
  Cmd.v (Cmd.info "dot" ~doc)
    Term.(const run $ arch_arg $ file_arg $ annotate_arg $ max_states_arg)

(* --------------------------------------------------------------- verify *)

let verify_cmd =
  let count_arg =
    let doc = "Random instances per oracle." in
    Arg.(value & opt int 25 & info [ "n"; "count" ] ~docv:"N" ~doc)
  in
  let oracle_arg =
    let doc =
      "Run only this oracle (repeatable). Available: simplex-cross, mdp-gain, sim-analytic, \
       sizing-bounds, split-monolithic, warm-cold, kron, topo, chaos, serve. Default: all."
    in
    Arg.(value & opt_all string [] & info [ "o"; "oracle" ] ~docv:"NAME" ~doc)
  in
  let out_dir_arg =
    let doc = "Write minimized failing repros into this directory." in
    Arg.(value & opt (some string) None & info [ "out-dir" ] ~docv:"DIR" ~doc)
  in
  let list_arg =
    let doc = "List the oracles and exit." in
    Arg.(value & flag & info [ "list-oracles" ] ~doc)
  in
  let verify_max_states_arg =
    let doc = "Cap on generated model sizes (states per CTMDP, sizing levels)." in
    Arg.(value & opt int 48 & info [ "max-states" ] ~docv:"N" ~doc)
  in
  let replay_arg =
    let doc =
      "Re-run a single $(docv) previously written by --out-dir and exit (nonzero if it still \
       fails)."
    in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE.repro" ~doc)
  in
  let run seed count oracle_names out_dir max_states list replay trace metrics metrics_json =
    setup_telemetry trace metrics metrics_json;
    let module V = B.Verify in
    if list then
      List.iter
        (fun (o : V.Oracle.t) -> Format.printf "%-16s %s@." o.V.Oracle.name o.V.Oracle.doc)
        V.Oracles.all
    else
      match replay with
      | Some path -> (
          match V.Driver.replay path with
          | Error e ->
              Format.eprintf "error: %s@." e;
              exit 2
          | Ok (label, V.Oracle.Pass) -> Format.printf "PASS %s@." label
          | Ok (label, V.Oracle.Fail msg) ->
              Format.printf "FAIL %s@.%s@." label msg;
              exit 1)
      | None -> begin
      let oracles =
        match oracle_names with
        | [] -> V.Oracles.all
        | names ->
            List.map
              (fun n ->
                match V.Oracles.find n with
                | Some o -> o
                | None ->
                    Format.eprintf "error: unknown oracle %S (available: %s)@." n
                      (String.concat ", " (V.Oracles.names ()));
                    exit 1)
              names
      in
      let summary =
        V.Driver.run ~oracles ?out_dir ~max_states
          ~progress:(fun line -> Format.printf "%s@." line)
          ~seed ~count ()
      in
      Format.printf "%a@." V.Driver.pp_summary summary;
      if not (V.Driver.passed summary) then exit 1
    end
  in
  let doc =
    "Cross-check the solvers against each other on random instances (differential oracles)."
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const run $ seed_arg $ count_arg $ oracle_arg $ out_dir_arg $ verify_max_states_arg
      $ list_arg $ replay_arg $ trace_arg $ metrics_arg $ metrics_json_arg)

(* ----------------------------------------------------------------- kron *)

let kron_cmd =
  let kx_arg =
    let doc = "Producer bus X queue capacity." in
    Arg.(value & opt int 19 & info [ "kx" ] ~docv:"K" ~doc)
  in
  let ky_arg =
    let doc = "Consumer bus Y local-queue capacity." in
    Arg.(value & opt int 19 & info [ "ky" ] ~docv:"K" ~doc)
  in
  let bridge_arg =
    let doc = "Bridge buffer capacity (default: same as --ky)." in
    Arg.(value & opt (some int) None & info [ "bridge" ] ~docv:"K" ~doc)
  in
  let lambda_x_arg =
    let doc = "Arrival rate into bus X." in
    Arg.(value & opt float 1.5 & info [ "lambda-x" ] ~docv:"RATE" ~doc)
  in
  let lambda_y_arg =
    let doc = "Local arrival rate into bus Y." in
    Arg.(value & opt float 1.2 & info [ "lambda-y" ] ~docv:"RATE" ~doc)
  in
  let cross_arg =
    let doc = "Fraction of X completions that cross the bridge." in
    Arg.(value & opt float 0.25 & info [ "cross" ] ~docv:"F" ~doc)
  in
  let mu_x_arg =
    let doc = "Service rate of bus X." in
    Arg.(value & opt float 2.4 & info [ "mu-x" ] ~docv:"RATE" ~doc)
  in
  let mu_y_arg =
    let doc = "Service rate of bus Y (processor-shared with the bridge)." in
    Arg.(value & opt float 2.2 & info [ "mu-y" ] ~docv:"RATE" ~doc)
  in
  let tol_arg =
    let doc = "Power-iteration convergence tolerance." in
    Arg.(value & opt float 1e-12 & info [ "tol" ] ~docv:"TOL" ~doc)
  in
  let max_sweeps_arg =
    let doc = "Power-iteration sweep cap." in
    Arg.(value & opt int 200_000 & info [ "max-sweeps" ] ~docv:"N" ~doc)
  in
  let cold_arg =
    let doc = "Start from the uniform distribution instead of the split-product seed." in
    Arg.(value & flag & info [ "cold" ] ~doc)
  in
  let run kx ky bridge lambda_x lambda_y cross mu_x mu_y tol max_sweeps cold trace metrics
      metrics_json =
    setup_telemetry trace metrics metrics_json;
    if kx < 1 || ky < 1 then begin
      Format.eprintf "error: queue capacities must be at least 1@.";
      exit 1
    end;
    let spec =
      { B.Monolithic.kx; ky; lambda_x; lambda_y; cross_fraction = cross; mu_x; mu_y }
    in
    let g =
      B.San_bridge.compare_split ~tol ~max_sweeps ~warm_start:(not cold)
        ?bridge_capacity:bridge spec
    in
    Format.printf "%a@." B.San_bridge.pp_gap g;
    if not g.B.San_bridge.joint.B.San_bridge.converged then begin
      Format.eprintf "error: power iteration did not converge (raise --max-sweeps)@.";
      exit 1
    end
  in
  let doc =
    "Solve the un-split bridged model exactly through the Kronecker/SAN descriptor and report \
     the split approximation's loss and delay gaps."
  in
  Cmd.v (Cmd.info "kron" ~doc)
    Term.(
      const run $ kx_arg $ ky_arg $ bridge_arg $ lambda_x_arg $ lambda_y_arg $ cross_arg
      $ mu_x_arg $ mu_y_arg $ tol_arg $ max_sweeps_arg $ cold_arg $ trace_arg $ metrics_arg
      $ metrics_json_arg)

(* ----------------------------------------------------------------- topo *)

(* Spec text for a rows x cols NoC grid: one shared-pool router bus per
   cell, one network-interface processor per router, and a row-major
   shift-by-one traffic pattern (every NI sends to the next router's NI),
   which loads every bus and exercises multi-hop XY routes.  Going through
   the text format on purpose: the command is the end-to-end check that a
   grid spec parses, routes, splits and sizes. *)
let grid_spec_text ~kind ~rows ~cols ~mu ~rate =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s noc rows %d cols %d rate %g\n" kind rows cols mu);
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Buffer.add_string buf (Printf.sprintf "shared_buffer noc_r%dc%d\n" r c);
      Buffer.add_string buf (Printf.sprintf "proc ni_r%dc%d on noc_r%dc%d\n" r c r c)
    done
  done;
  let n = rows * cols in
  for i = 0 to n - 1 do
    let j = (i + 1) mod n in
    Buffer.add_string buf
      (Printf.sprintf "flow ni_r%dc%d -> ni_r%dc%d rate %g\n" (i / cols) (i mod cols)
         (j / cols) (j mod cols) rate)
  done;
  Buffer.contents buf

let topo_cmd =
  let rows_arg =
    let doc = "Grid rows (ignored with --file)." in
    Arg.(value & opt int 4 & info [ "rows" ] ~docv:"N" ~doc)
  in
  let cols_arg =
    let doc = "Grid columns (ignored with --file)." in
    Arg.(value & opt int 4 & info [ "cols" ] ~docv:"N" ~doc)
  in
  let kind_arg =
    let doc = "Grid kind: mesh or torus (ignored with --file)." in
    Arg.(value & opt string "mesh" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let mu_arg =
    let doc = "Router service rate (ignored with --file)." in
    Arg.(value & opt float 2.0 & info [ "mu" ] ~docv:"RATE" ~doc)
  in
  let rate_arg =
    let doc = "Per-NI injection rate (ignored with --file)." in
    Arg.(value & opt float 0.2 & info [ "rate" ] ~docv:"RATE" ~doc)
  in
  let sharing_arg =
    let doc = "Sharing mode for the sizing run: static or damq." in
    Arg.(value & opt string "damq" & info [ "sharing" ] ~docv:"MODE" ~doc)
  in
  let topo_max_states_arg =
    let doc = "Per-subsystem CTMDP state-space cap." in
    Arg.(value & opt int 24 & info [ "max-states" ] ~docv:"N" ~doc)
  in
  let spec_arg =
    let doc = "Print the generated grid spec text and exit." in
    Arg.(value & flag & info [ "print-spec" ] ~doc)
  in
  let run file rows cols kind mu rate budget max_states sharing print_spec trace metrics
      metrics_json =
    setup_telemetry trace metrics metrics_json;
    let sharing =
      match sharing with
      | "static" -> B.Sizing.Static
      | "damq" -> B.Sizing.Damq
      | other ->
          Format.eprintf "error: unknown sharing mode %S (use static or damq)@." other;
          exit 1
    in
    let text =
      match file with
      | Some path -> (
          match open_in path with
          | exception Sys_error msg ->
              Format.eprintf "error: %s@." msg;
              exit 1
          | ic ->
              let len = in_channel_length ic in
              let s = really_input_string ic len in
              close_in ic;
              s)
      | None ->
          if kind <> "mesh" && kind <> "torus" then begin
            Format.eprintf "error: unknown grid kind %S (use mesh or torus)@." kind;
            exit 1
          end;
          grid_spec_text ~kind ~rows ~cols ~mu ~rate
    in
    if print_spec then print_string text
    else
      match B.Spec_parser.parse text with
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 1
      | Ok (topo, traffic) ->
          let config =
            { (B.Sizing.default_config ~budget) with B.Sizing.max_states; sharing }
          in
          let result, report = B.Sizing.compare_sharing config traffic in
          Format.printf "%a@.@.%a@.@.%a@." B.Topology.pp topo B.Sizing.pp_summary result
            B.Sizing.pp_sharing_report report
  in
  let doc =
    "Size a mesh/torus NoC with shared router buffers and compare static, DAMQ and separate \
     buffer organizations."
  in
  Cmd.v (Cmd.info "topo" ~doc)
    Term.(
      const run $ file_arg $ rows_arg $ cols_arg $ kind_arg $ mu_arg $ rate_arg $ budget_arg
      $ topo_max_states_arg $ sharing_arg $ spec_arg $ trace_arg $ metrics_arg
      $ metrics_json_arg)

(* ---------------------------------------------------------------- serve *)

let socket_arg =
  let doc = "Unix socket path (default: $(b,BUFSIZE_SERVE_SOCKET) or <tmpdir>/bufsize.sock)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let queue_arg =
    let doc = "Bounded request-queue depth; a full queue rejects with a typed overloaded error." in
    Arg.(value & opt (some int) None & info [ "queue" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains." in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Default per-request deadline in ms for requests without deadline_ms (0 = none)." in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let max_request_arg =
    let doc = "Longest accepted request line in bytes." in
    Arg.(value & opt (some int) None & info [ "max-request" ] ~docv:"BYTES" ~doc)
  in
  let flight_cap_arg =
    let doc = "Flight-recorder capacity: completed requests remembered for crash dumps." in
    Arg.(value & opt (some int) None & info [ "flight-cap" ] ~docv:"N" ~doc)
  in
  let log_requests_arg =
    let doc = "Write one structured JSONL line per completed request to stderr." in
    Arg.(value & flag & info [ "log-requests" ] ~doc)
  in
  let run socket queue workers deadline max_request flight_cap log_requests trace metrics
      metrics_json =
    setup_telemetry trace metrics metrics_json;
    let base = B.Serve.config_of_env () in
    let config =
      {
        B.Serve.socket_path = Option.value ~default:base.B.Serve.socket_path socket;
        queue_depth = Option.value ~default:base.B.Serve.queue_depth queue;
        workers = Option.value ~default:base.B.Serve.workers workers;
        default_deadline_ms = Option.value ~default:base.B.Serve.default_deadline_ms deadline;
        max_request_bytes = Option.value ~default:base.B.Serve.max_request_bytes max_request;
        flight_cap = Option.value ~default:base.B.Serve.flight_cap flight_cap;
        log_requests = log_requests || base.B.Serve.log_requests;
      }
    in
    let server = B.Serve.start ~config () in
    Format.eprintf "bufsize serve: listening on %s (%d workers, queue %d)@."
      config.B.Serve.socket_path config.B.Serve.workers config.B.Serve.queue_depth;
    (* SIGTERM/SIGINT mean drain, not die: finish in-flight requests,
       write their replies, unlink the socket, then exit 0 so at_exit
       still flushes the telemetry exporters. *)
    let stop_requested = Atomic.make false in
    List.iter
      (fun signum ->
        Sys.set_signal signum (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true)))
      [ Sys.sigint; Sys.sigterm ];
    (* SIGUSR1 dumps the flight recorder without disturbing service.  The
       handler only sets a flag; the wait loop does the file IO, because
       a signal handler must not take the locks a dump walks through. *)
    let dump_requested = Atomic.make false in
    Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> Atomic.set dump_requested true));
    while not (Atomic.get stop_requested) do
      if Atomic.compare_and_set dump_requested true false then begin
        match B.Serve.dump_flight server with
        | path -> Format.eprintf "bufsize serve: flight recorder dumped to %s@." path
        | exception Sys_error msg -> Format.eprintf "bufsize serve: flight dump failed: %s@." msg
      end;
      (try Unix.sleepf 0.2 with Unix.Unix_error (EINTR, _, _) -> ())
    done;
    Format.eprintf "bufsize serve: draining and shutting down@.";
    B.Serve.stop server;
    exit 0
  in
  let doc = "Run the sizing daemon: newline-delimited JSON over a Unix socket." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ queue_arg $ workers_arg $ deadline_arg $ max_request_arg
      $ flight_cap_arg $ log_requests_arg $ trace_arg $ metrics_arg $ metrics_json_arg)

let request_cmd =
  let op_arg =
    let doc = "Operation: ping, size, simulate, kron, verify, ..." in
    Arg.(value & opt string "size" & info [ "op" ] ~docv:"OP" ~doc)
  in
  let raw_arg =
    let doc = "Send this JSON object verbatim instead of building one from the flags." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"JSON" ~doc)
  in
  let id_arg =
    let doc = "Request id (echoed by the daemon)." in
    Arg.(value & opt int 1 & info [ "id" ] ~docv:"ID" ~doc)
  in
  let deadline_arg =
    let doc = "Per-request deadline in ms (<= 0 = already expired; solver cut off server-side)." in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let attempts_arg =
    let doc = "Total tries under connection failure or overloaded rejection." in
    Arg.(value & opt int 6 & info [ "attempts" ] ~docv:"N" ~doc)
  in
  let telemetry_arg =
    let doc =
      "Ask the daemon to attach per-request telemetry (spans, solver diagnostics, cache deltas, \
       queue/service latency) to the reply."
    in
    Arg.(value & flag & info [ "telemetry" ] ~doc)
  in
  let prometheus_arg =
    let doc =
      "With $(b,--op metrics): request Prometheus text exposition and print it raw (for piping \
       into a scrape file)."
    in
    Arg.(value & flag & info [ "prometheus" ] ~doc)
  in
  let run socket raw op arch file budget max_states id deadline attempts seed telemetry
      prometheus =
    install_exit_on_signals ();
    let socket =
      match socket with
      | Some s -> s
      | None -> (B.Serve.config_of_env ()).B.Serve.socket_path
    in
    let req =
      match raw with
      | Some text -> (
          match B.Json.parse text with
          | Ok (B.Json.Obj _ as v) -> v
          | Ok _ ->
              Format.eprintf "error: the request must be a JSON object@.";
              exit 2
          | Error e ->
              Format.eprintf "error: bad request JSON: %s@." e;
              exit 2)
      | None ->
          B.Json.Obj
            ([
               ("id", B.Json.Num (float_of_int id));
               ("op", B.Json.Str op);
             ]
            @ (match file with
              | Some path -> (
                  match In_channel.with_open_text path In_channel.input_all with
                  | text -> [ ("spec", B.Json.Str text) ]
                  | exception Sys_error msg ->
                      Format.eprintf "error: %s@." msg;
                      exit 2)
              | None -> if op = "size" || op = "simulate" then [ ("arch", B.Json.Str arch) ] else [])
            @ [
                ("budget", B.Json.Num (float_of_int budget));
                ("max_states", B.Json.Num (float_of_int max_states));
              ]
            @ (match deadline with None -> [] | Some ms -> [ ("deadline_ms", B.Json.Num ms) ])
            @ (if telemetry then [ ("telemetry", B.Json.Bool true) ] else [])
            @ if prometheus then [ ("prometheus", B.Json.Bool true) ] else [])
    in
    match B.Serve.request_with_retry ~attempts ?seed ~socket req with
    | Error e ->
        Format.eprintf "error: %s@." e;
        exit 2
    | Ok reply -> (
        (* A Prometheus-format metrics reply carries the exposition as a
           JSON string; print it raw so the output is scrapeable as-is. *)
        (match (prometheus, B.Json.member "text" reply, B.Json.mem_string "status" reply) with
        | true, Some (B.Json.Str text), Some ("ok" | "degraded") -> print_string text
        | _ -> print_endline (B.Json.encode reply));
        match B.Json.mem_string "status" reply with
        | Some ("ok" | "degraded") -> exit 0
        | Some _ | None -> exit 1)
  in
  let seed_opt_arg =
    let doc = "Seed for deterministic retry jitter." in
    Arg.(value & opt (some int) None & info [ "retry-seed" ] ~docv:"SEED" ~doc)
  in
  let doc =
    "Send one request to a running daemon and print the reply; retries with jittered \
     exponential backoff (honoring the server's retry_after_ms hint) on connection failure and \
     overloaded rejections."
  in
  Cmd.v (Cmd.info "request" ~doc)
    Term.(
      const run $ socket_arg $ raw_arg $ op_arg $ arch_arg $ file_arg $ budget_arg
      $ max_states_arg $ id_arg $ deadline_arg $ attempts_arg $ seed_opt_arg $ telemetry_arg
      $ prometheus_arg)

(* ----------------------------------------------------------- experiment *)

let experiment_cmd =
  let run arch file budget replications horizon seed max_states weights trace metrics
      metrics_json =
    setup_telemetry trace metrics metrics_json;
    let topo, traffic = load_arch arch file in
    let exp =
      B.experiment ~budget ~replications ~horizon ~seed
        ~config:
          {
            (B.Sizing.default_config ~budget) with
            B.Sizing.max_states;
            client_weight = weight_fn topo weights;
          }
        traffic
    in
    let outcome = B.size_and_evaluate exp in
    Format.printf "%a@." B.pp_outcome outcome
  in
  let doc = "The paper's before/after/timeout loss comparison." in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(
      const run $ arch_arg $ file_arg $ budget_arg $ replications_arg $ horizon_arg $ seed_arg
      $ max_states_arg $ weights_arg $ trace_arg $ metrics_arg $ metrics_json_arg)

let () =
  B.Obs.init_from_env ();
  let doc = "CTMDP buffer insertion and optimal buffer sizing for SoC architectures" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "bufsize" ~version:"1.0.0" ~doc)
          [
            info_cmd;
            size_cmd;
            simulate_cmd;
            experiment_cmd;
            kron_cmd;
            topo_cmd;
            dot_cmd;
            verify_cmd;
            serve_cmd;
            request_cmd;
          ]))
