(* Benchmark & reproduction harness.

   One entry per paper artifact (see DESIGN.md's experiment index):

     fig1                the Figure 1 sample architecture and its split
     nonlinear           Section 2: monolithic quadratic system vs split
     fig3                Figure 3: per-processor losses, 3 policies, plus
                         the ~20% / ~50% aggregate improvements
     table1              Table 1: budgets 160/320/640, pre/post losses
     ablation-quantile   sensitivity to the occupancy quantile
     ablation-levels     CTMDP discretization vs resulting loss
     ablation-solver     joint LP vs separate LPs vs policy iteration
     parallel            domain-pool scaling: sizing LPs and replications
                         at 1/2/4/all domains, with an identical-statistics
                         cross-check
     perf                bechamel microbenchmarks
     sparse              CSR pipeline scaling: netproc core subsystem with
                         buffer levels swept up to 2x, sparse vs dense
                         solve time, allocation, and peak RSS
     warmstart           Fig-3 resize loop (10 iterations) with cold solves
                         vs the exact-key solve cache + warm-started bases,
                         with a bitwise identical-result cross-check; writes
                         BENCH_warmstart.json
     kron                un-split bridged model through the Kronecker/SAN
                         descriptor, state-space sweep to 10^6 joint states
                         (BUFSIZE_KRON_SWEEP overrides), with a dense
                         stationary cross-check on the small instances;
                         writes BENCH_kron.json
     serve               daemon round-trip latency: one cold netproc solve
                         vs a warm concurrent-client sweep over the sizing
                         service, with a bitwise reply cross-check; writes
                         BENCH_serve.json

   With no argument the paper artifacts (fig1 nonlinear fig3 table1) run in
   order.  `all` adds the ablations, parallel, perf, and sparse.  Runs that
   include `parallel` or `perf` also write BENCH_parallel.json with
   per-artifact wall-clock times (machine-readable perf trajectory); runs
   that include `sparse` write BENCH_sparse.json (per-instance states,
   seconds, allocation, peak RSS, and the dense-path comparison). *)

module B = Bufsize
module Stats = Bufsize_numeric.Stats

let section title =
  Format.printf "@.=== %s ===@.@." title

(* --------------------------------------------- machine-readable timings *)

let bench_records : (string * float * float option) list ref = ref []

let record ?speedup name seconds = bench_records := (name, seconds, speedup) :: !bench_records

let write_bench_json path =
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"bufsize-bench-v1\",\n  \"entries\": [\n";
  let entries = List.rev !bench_records in
  let last = List.length entries - 1 in
  List.iteri
    (fun i (name, secs, speedup) ->
      Printf.fprintf oc "    {\"name\": %S, \"seconds\": %.6f%s}%s\n" name secs
        (match speedup with
        | None -> ""
        | Some s -> Printf.sprintf ", \"speedup\": %.3f" s)
        (if i = last then "" else ","))
    entries;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.printf "@.(json written to %s)@." path

(* Run [f] with the solve caches and the warm-basis registry disabled and
   cleared, restoring the previous switches afterwards.  Scaling and
   overhead benchmarks wrap their timed sections in this so repeated
   identical solves time the solver, not a cache lookup. *)
let with_cold_solves f =
  let cache_was = B.Numeric.Solve_cache.enabled () in
  let warm_was = B.Numeric.Lp.warm_start_enabled () in
  B.Numeric.Solve_cache.set_enabled false;
  B.Numeric.Lp.set_warm_start false;
  B.Numeric.Solve_cache.clear_all ();
  Fun.protect
    ~finally:(fun () ->
      B.Numeric.Solve_cache.set_enabled cache_was;
      B.Numeric.Lp.set_warm_start warm_was;
      B.Numeric.Solve_cache.clear_all ())
    f

(* ------------------------------------------------------------------ FIG1 *)

let run_fig1 () =
  section "FIG1: sample architecture (paper Figures 1 and 2)";
  let topo, traffic = B.Fig1.create () in
  Format.printf "%a@.@.%a@.@." B.Topology.pp topo B.Traffic.pp traffic;
  let split = B.Splitting.split traffic in
  Format.printf "%a@." (fun ppf -> B.Splitting.pp ppf topo) split;
  Format.printf
    "@.paper: the architecture splits into 4 subsystems -> measured: %d subsystems@."
    (Array.length split.B.Splitting.subsystems)

(* -------------------------------------------------------------- NONLIN *)

let run_nonlinear () =
  section "NONLIN: monolithic quadratic system vs split linear systems (paper Section 2)";
  let specs =
    [
      ( "moderate load",
        {
          B.Monolithic.kx = 4;
          ky = 4;
          lambda_x = 2.1;
          lambda_y = 1.8;
          cross_fraction = 0.6;
          mu_x = 2.4;
          mu_y = 2.2;
        } );
      ( "heavy coupling",
        {
          B.Monolithic.kx = 8;
          ky = 8;
          lambda_x = 3.5;
          lambda_y = 3.0;
          cross_fraction = 0.95;
          mu_x = 2.5;
          mu_y = 2.0;
        } );
    ]
  in
  List.iter
    (fun (label, spec) ->
      Format.printf "%s: %d unknowns, %d nonlinear monomial occurrence(s)@." label
        (B.Monolithic.dim spec)
        (B.Monolithic.quadratic_term_count spec);
      let report = B.Monolithic.attempt ~starts:25 spec in
      Format.printf "  plain  %a@." B.Monolithic.pp_attempt report;
      let damped = B.Monolithic.attempt ~starts:25 ~damped:true spec in
      Format.printf "  damped %a@." B.Monolithic.pp_attempt damped;
      let s = B.Monolithic.solve_split spec in
      Format.printf
        "  split system: linear, always solvable (losses x=%.4g y=%.4g bridge=%.4g)@." s.B.Monolithic.x_loss
        s.B.Monolithic.y_loss s.B.Monolithic.bridge_loss)
    specs;
  Format.printf
    "@.paper: Matlab 6.1's nonlinear solver failed on the quadratic system; the split system is@.\
     linear and solvable.  measured: generic Newton starts do not reliably produce valid@.\
     solutions, the split solve always succeeds.@."

(* ---------------------------------------------------------------- FIG3 *)

let netproc_experiment ~budget ~replications =
  let _, traffic = B.Netproc.create () in
  B.experiment ~budget ~replications ~horizon:2000. ~warmup:100.
    ~config:{ (B.Sizing.default_config ~budget) with B.Sizing.max_states = 64 }
    traffic

let write_csv path header rows =
  let oc = open_out path in
  output_string oc (header ^ "\n");
  List.iter (fun row -> output_string oc (row ^ "\n")) rows;
  close_out oc;
  Format.printf "(csv written to %s)@." path

let run_fig3 () =
  section "FIG3: per-processor loss, before sizing / after CTMDP sizing / timeout policy";
  Format.printf "workload: 17-processor network processor, budget 160 units, 10 replications@.@.";
  let outcome = B.size_and_evaluate (netproc_experiment ~budget:160 ~replications:10) in
  Format.printf "%a@.@." B.pp_outcome outcome;
  Format.printf "paper:    total loss drops ~20%% vs constant sizing and ~50%% vs timeout policy@.";
  Format.printf "measured: %.1f%% vs constant sizing, %.1f%% vs timeout policy@."
    (100. *. outcome.B.improvement_vs_before)
    (100. *. outcome.B.improvement_vs_timeout);
  let before = B.per_proc_mean_losses outcome.B.before in
  let after = B.per_proc_mean_losses outcome.B.after in
  let timeout = B.per_proc_mean_losses outcome.B.timeout_variant in
  write_csv "fig3.csv" "processor,before,after,timeout"
    (List.init (Array.length before) (fun p ->
         Printf.sprintf "%d,%.2f,%.2f,%.2f" (p + 1) before.(p) after.(p) timeout.(p)));
  outcome

(* --------------------------------------------------------------- TABLE1 *)

let run_table1 () =
  section "TABLE1: loss under varying total buffer size (processors 1, 4, 15, 16)";
  let interesting = [ 1; 4; 15; 16 ] in
  let budgets = [ 160; 320; 640 ] in
  let results =
    List.map
      (fun budget ->
        let outcome = B.size_and_evaluate (netproc_experiment ~budget ~replications:10) in
        (budget, outcome))
      budgets
  in
  Format.printf "%-10s" "PROCESSOR";
  List.iter (fun (b, _) -> Format.printf " | Buf %-4d pre   post" b) results;
  Format.printf "@.";
  List.iter
    (fun proc ->
      Format.printf "%-10d" proc;
      List.iter
        (fun (_, outcome) ->
          let pre = (B.per_proc_mean_losses outcome.B.before).(proc - 1) in
          let post = (B.per_proc_mean_losses outcome.B.after).(proc - 1) in
          Format.printf " | %8.0f %6.0f" pre post)
        results;
      Format.printf "@.")
    interesting;
  Format.printf "TOTAL     ";
  List.iter
    (fun (_, outcome) ->
      let mean v = Stats.mean v.B.aggregate.B.Replicate.total_lost in
      Format.printf " | %8.0f %6.0f" (mean outcome.B.before) (mean outcome.B.after))
    results;
  Format.printf "@.@.";
  let nprocs = Array.length (B.per_proc_mean_losses (snd (List.hd results)).B.before) in
  write_csv "table1.csv"
    ("processor"
    ^ String.concat ""
        (List.map (fun (b, _) -> Printf.sprintf ",pre%d,post%d" b b) results))
    (List.init nprocs (fun p ->
         string_of_int (p + 1)
         ^ String.concat ""
             (List.map
                (fun (_, o) ->
                  Printf.sprintf ",%.2f,%.2f"
                    (B.per_proc_mean_losses o.B.before).(p)
                    (B.per_proc_mean_losses o.B.after).(p))
                results)));
  Format.printf
    "paper:    post-sizing losses shrink as the budget grows and reach 0 at 640 units@.";
  (match results with
  | (_, o160) :: _ ->
      let last_budget, o640 = List.nth results (List.length results - 1) in
      let post160 = Stats.mean o160.B.after.B.aggregate.B.Replicate.total_lost in
      let post640 = Stats.mean o640.B.after.B.aggregate.B.Replicate.total_lost in
      Format.printf "measured: post-sizing total loss %.0f at 160 units -> %.0f at %d units@."
        post160 post640 last_budget
  | [] -> ())

(* ------------------------------------------------------------ ABLATIONS *)

let small_arch () =
  let b = B.Topology.builder () in
  let bus0 = B.Topology.add_bus b ~service_rate:3.0 "west" in
  let bus1 = B.Topology.add_bus b ~service_rate:3.0 "east" in
  let p0 = B.Topology.add_processor b ~bus:bus0 "A" in
  let p1 = B.Topology.add_processor b ~bus:bus0 "B" in
  let p2 = B.Topology.add_processor b ~bus:bus1 "C" in
  let p3 = B.Topology.add_processor b ~bus:bus1 "D" in
  ignore (B.Topology.add_bridge b ~between:(bus0, bus1) "br");
  let topo = B.Topology.finalize b in
  let traffic =
    B.Traffic.create topo
      [
        { B.Traffic.src = p0; dst = p2; rate = 1.3 };
        { B.Traffic.src = p1; dst = p0; rate = 0.8 };
        { B.Traffic.src = p2; dst = p3; rate = 1.1 };
        { B.Traffic.src = p3; dst = p1; rate = 0.7 };
      ]
  in
  traffic

let simulated_loss traffic allocation =
  let spec =
    {
      (B.Sim_run.default_spec ~traffic ~allocation) with
      B.Sim_run.horizon = 2000.;
      warmup = 100.;
    }
  in
  let agg = B.Replicate.run ~replications:5 spec in
  Stats.mean agg.B.Replicate.total_lost

let run_ablation_quantile () =
  section "ABL-QUANT: occupancy quantile vs resulting loss";
  let traffic = small_arch () in
  Format.printf "%-10s %16s %14s@." "quantile" "predicted gain" "simulated loss";
  List.iter
    (fun quantile ->
      let config =
        { (B.Sizing.default_config ~budget:16) with B.Sizing.quantile; max_states = 64 }
      in
      let r = B.Sizing.run config traffic in
      Format.printf "%-10.2f %16.4f %14.1f@." quantile r.B.Sizing.predicted_loss_rate
        (simulated_loss traffic r.B.Sizing.allocation))
    [ 0.8; 0.9; 0.95; 0.99 ]

let run_ablation_levels () =
  section "ABL-LEVELS: CTMDP state-space cap vs resulting loss";
  let traffic = small_arch () in
  Format.printf "%-12s %10s %16s %14s %10s@." "max_states" "states" "predicted gain"
    "simulated loss" "time (s)";
  List.iter
    (fun max_states ->
      let config = { (B.Sizing.default_config ~budget:16) with B.Sizing.max_states } in
      let t0 = Unix.gettimeofday () in
      let r = B.Sizing.run config traffic in
      let dt = Unix.gettimeofday () -. t0 in
      let states =
        Array.fold_left
          (fun acc (s : B.Sizing.subsystem_solution) -> acc + B.Bus_model.num_states s.B.Sizing.model)
          0 r.B.Sizing.solutions
      in
      Format.printf "%-12d %10d %16.4f %14.1f %10.2f@." max_states states
        r.B.Sizing.predicted_loss_rate
        (simulated_loss traffic r.B.Sizing.allocation)
        dt)
    [ 16; 32; 64; 128 ]

let run_ablation_solver () =
  section "ABL-SOLVER: joint LP (paper) vs per-subsystem LPs vs policy iteration";
  let traffic = small_arch () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let joint, t_joint =
    time (fun () ->
        B.Sizing.run
          { (B.Sizing.default_config ~budget:16) with B.Sizing.max_states = 64 }
          traffic)
  in
  let separate, t_sep =
    time (fun () ->
        B.Sizing.run
          {
            (B.Sizing.default_config ~budget:16) with
            B.Sizing.max_states = 64;
            solver = B.Sizing.Separate;
          }
          traffic)
  in
  Format.printf "%-22s %16s %14s %10s@." "solver" "predicted gain" "simulated loss" "time (s)";
  Format.printf "%-22s %16.4f %14.1f %10.2f@." "joint LP (one go)"
    joint.B.Sizing.predicted_loss_rate
    (simulated_loss traffic joint.B.Sizing.allocation)
    t_joint;
  Format.printf "%-22s %16.4f %14.1f %10.2f@." "separate LPs"
    separate.B.Sizing.predicted_loss_rate
    (simulated_loss traffic separate.B.Sizing.allocation)
    t_sep;
  (* Cross-check: unconstrained LP gain = policy-iteration gain per subsystem. *)
  Format.printf "@.unconstrained gain cross-check (LP vs policy iteration) per subsystem:@.";
  let split = B.Splitting.split traffic in
  Array.iter
    (fun sub ->
      let model = B.Bus_model.build ~max_states:64 sub in
      let lp_gain =
        match B.Mdp.Lp_formulation.solve (B.Bus_model.ctmdp model) with
        | B.Mdp.Lp_formulation.Optimal s -> s.B.Mdp.Lp_formulation.gain
        | _ -> Float.nan
      in
      let pi = B.Mdp.Policy_iteration.solve (B.Bus_model.ctmdp model) in
      Format.printf "  %-8s LP %.6f  PI %.6f  (|diff| %.2e)@." sub.B.Splitting.bus_name lp_gain
        pi.B.Mdp.Policy_iteration.gain
        (Float.abs (lp_gain -. pi.B.Mdp.Policy_iteration.gain)))
    split.B.Splitting.subsystems

let run_ablation_weights () =
  section "ABL-WEIGHTS: weighted losses (the paper's closing remark, implemented)";
  Format.printf
    "weighting processor P4's losses 10x in the CTMDP cost; netproc, budget 160, 5 replications@.@.";
  let _, traffic = B.Netproc.create () in
  let p4 = 3 in
  let run_with weight =
    let config =
      {
        (B.Sizing.default_config ~budget:160) with
        B.Sizing.max_states = 64;
        client_weight =
          (fun c ->
            match c with
            | B.Traffic.Proc_client p when p = p4 -> weight
            | B.Traffic.Proc_client _ | B.Traffic.Bridge_client _ -> 1.);
      }
    in
    let sizing = B.Sizing.run config traffic in
    let spec =
      {
        (B.Sim_run.default_spec ~traffic ~allocation:sizing.B.Sizing.allocation) with
        B.Sim_run.horizon = 2000.;
        warmup = 100.;
      }
    in
    let agg = B.Replicate.run ~replications:5 spec in
    let per_proc = B.Replicate.mean_per_proc_lost agg in
    (per_proc.(p4), Stats.mean agg.B.Replicate.total_lost)
  in
  let base_p4, base_total = run_with 1. in
  let weighted_p4, weighted_total = run_with 10. in
  Format.printf "%-18s %14s %14s@." "weight on P4" "P4 loss" "total loss";
  Format.printf "%-18s %14.1f %14.1f@." "1 (unweighted)" base_p4 base_total;
  Format.printf "%-18s %14.1f %14.1f@." "10" weighted_p4 weighted_total;
  Format.printf "@.weighting a processor trades total loss for its protection (P4: %.1f -> %.1f)@."
    base_p4 weighted_p4

let run_ablation_profiling () =
  section "ABL-PROFILING: profile-driven re-sizing (the paper's 'better profiling' remark)";
  Format.printf "netproc, budget 160; each round re-sizes with the previous round's measured@.";
  Format.printf "per-buffer arrival rates (loss thinning included)@.@.";
  List.iter
    (fun scale ->
      let _, traffic = B.Netproc.create ~rate_scale:scale () in
      let exp =
        B.experiment ~budget:160 ~horizon:2000.
          ~config:{ (B.Sizing.default_config ~budget:160) with B.Sizing.max_states = 64 }
          traffic
      in
      let _, losses = B.profiled_sizing ~rounds:4 exp in
      Format.printf "rate scale %.2f, per-round simulated losses:" scale;
      List.iter (fun loss -> Format.printf " %8.0f" loss) losses;
      Format.printf "@.")
    [ 1.12; 1.4 ];
  Format.printf
    "@.finding: the allocation is a profiling fixpoint at both loads — the integer level@.\
     and quantile quantization absorbs the (<= ~20%%) rate shifts that loss thinning@.\
     causes, so the analytically routed rates are already adequate for Poisson traffic.@."

(* ------------------------------------------------------------- PARALLEL *)

(* Wall-clock scaling of the two pool-mapped hot paths at 1, 2, 4, and all
   domains.  Every configuration must produce the SAME numbers — the pool
   preserves item ordering and the aggregation is a deterministic fold —
   so the artifact cross-checks statistics bitwise across domain counts
   besides timing them. *)
let run_parallel () =
  section "PARALLEL: domain-pool scaling (Table 1 sizing LPs, 32-replication simulation)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let all = B.Pool.default_size () in
  let sizes = List.sort_uniq compare [ 1; 2; 4; all ] in
  Format.printf "domain counts: %s (machine default %d; BUFSIZE_NUM_DOMAINS overrides)@.@."
    (String.concat ", " (List.map string_of_int sizes))
    all;
  let with_pool k f =
    let pool = B.Pool.create k in
    Fun.protect ~finally:(fun () -> B.Pool.shutdown pool) (fun () -> f pool)
  in
  let _, traffic = B.Netproc.create () in
  (* --- Table 1 sizing, Separate solver: per-subsystem LPs fan out --- *)
  let sizing_config =
    {
      (B.Sizing.default_config ~budget:160) with
      B.Sizing.max_states = 64;
      solver = B.Sizing.Separate;
    }
  in
  Format.printf "Table 1 sizing (netproc, budget 160, separate per-subsystem LPs):@.";
  Format.printf "  %-10s %10s %10s@." "domains" "time (s)" "speedup";
  let sizing_base = ref Float.nan in
  let sizing_gain = ref Float.nan in
  let sizing_alloc = ref None in
  (* Cold solves throughout: with the solve cache live, every domain count
     after the first would be an exact-key cache hit and the scaling curve
     would measure the cache, not the pool.  [Pool.create] caps requested
     sizes at the machine's domain count, so several requested sizes can
     collapse to the same effective pool; those are measured once (min
     over a few reps) and the measurement is shared — re-timing an
     identical pool only adds noise that masquerades as a slowdown. *)
  with_cold_solves @@ fun () ->
  let sizing_reps = 3 in
  let by_effective : (int * (float * B.Sizing.result)) list ref = ref [] in
  List.iter
    (fun k ->
      let eff = ref k in
      let measure pool =
        let dt = ref infinity and res = ref None in
        for _ = 1 to sizing_reps do
          let t, r = time (fun () -> B.Sizing.run ~pool sizing_config traffic) in
          if t < !dt then dt := t;
          res := Some r
        done;
        (!dt, Option.get !res)
      in
      let dt, r =
        with_pool k (fun pool ->
            eff := B.Pool.size pool;
            match List.assoc_opt !eff !by_effective with
            | Some cached -> cached
            | None ->
                let m = measure pool in
                by_effective := (!eff, m) :: !by_effective;
                m)
      in
      if Float.is_nan !sizing_base then sizing_base := dt;
      (match !sizing_alloc with None -> sizing_alloc := Some r.B.Sizing.allocation | Some _ -> ());
      let gain = r.B.Sizing.predicted_loss_rate in
      if Float.is_nan !sizing_gain then sizing_gain := gain
      else if gain <> !sizing_gain then
        Format.printf "  WARNING: predicted gain differs across domain counts (%.17g vs %.17g)@."
          gain !sizing_gain;
      let speedup = !sizing_base /. dt in
      record ~speedup (Printf.sprintf "parallel:sizing-table1:domains=%d" k) dt;
      Format.printf "  %-10d %10.2f %9.2fx%s@." k dt speedup
        (if !eff <> k then Printf.sprintf "   (capped to %d domain%s)" !eff (if !eff = 1 then "" else "s")
         else ""))
    sizes;
  (* --- 32-replication simulation of the sized allocation --- *)
  let allocation =
    match !sizing_alloc with Some a -> a | None -> B.Buffer_alloc.uniform traffic ~budget:160
  in
  let spec =
    {
      (B.Sim_run.default_spec ~traffic ~allocation) with
      B.Sim_run.horizon = 2000.;
      warmup = 100.;
    }
  in
  Format.printf "@.32-replication simulation (netproc, horizon 2000):@.";
  Format.printf "  %-10s %10s %10s %14s@." "domains" "time (s)" "speedup" "mean lost";
  let sim_base = ref Float.nan in
  let reference = ref None in
  let identical = ref true in
  List.iter
    (fun k ->
      let dt, agg =
        with_pool k (fun pool -> time (fun () -> B.Replicate.run ~pool ~replications:32 spec))
      in
      if Float.is_nan !sim_base then sim_base := dt;
      (* Bitwise comparison against the 1-domain statistics. *)
      let fingerprint (agg : B.Replicate.aggregate) =
        Array.concat
          [
            [|
              float_of_int (Stats.count agg.B.Replicate.total_lost);
              Stats.mean agg.B.Replicate.total_lost;
              Stats.variance agg.B.Replicate.total_lost;
              Stats.mean agg.B.Replicate.loss_fraction;
              Stats.variance agg.B.Replicate.loss_fraction;
            |];
            B.Replicate.mean_per_proc_lost agg;
          ]
      in
      let fp = fingerprint agg in
      (match !reference with
      | None -> reference := Some fp
      | Some ref_fp ->
          if
            not
              (Array.for_all2
                 (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
                 ref_fp fp)
          then begin
            identical := false;
            Format.printf "  WARNING: statistics differ from the 1-domain run!@."
          end);
      let speedup = !sim_base /. dt in
      record ~speedup (Printf.sprintf "parallel:sim32:domains=%d" k) dt;
      Format.printf "  %-10d %10.2f %9.2fx %14.1f@." k dt speedup
        (Stats.mean agg.B.Replicate.total_lost))
    sizes;
  Format.printf "@.loss statistics across domain counts: %s@."
    (if !identical then "bitwise identical" else "DIVERGED (bug)")

(* ----------------------------------------------------------------- PERF *)

let run_perf () =
  section "PERF: bechamel microbenchmarks";
  let open Bechamel in
  let traffic = small_arch () in
  let split = B.Splitting.split traffic in
  let model = B.Bus_model.build ~max_states:64 split.B.Splitting.subsystems.(0) in
  let ctmdp = B.Bus_model.ctmdp model in
  let lp_solve =
    Test.make ~name:"ctmdp-lp-solve(64st)"
      (Staged.stage (fun () -> ignore (B.Mdp.Lp_formulation.solve ctmdp)))
  in
  let pi_solve =
    Test.make ~name:"policy-iteration(64st)"
      (Staged.stage (fun () -> ignore (B.Mdp.Policy_iteration.solve ctmdp)))
  in
  let ctmc = Bufsize_prob.Birth_death.to_ctmc (Bufsize_prob.Birth_death.mm1k ~lambda:2. ~mu:3. ~k:50) in
  let stationary =
    Test.make ~name:"ctmc-stationary(51st)"
      (Staged.stage (fun () -> ignore (Bufsize_prob.Ctmc.stationary ctmc)))
  in
  let allocation = B.Buffer_alloc.uniform traffic ~budget:16 in
  let sim =
    Test.make ~name:"simulate(horizon=200)"
      (Staged.stage (fun () ->
           ignore
             (B.Sim_run.run
                {
                  (B.Sim_run.default_spec ~traffic ~allocation) with
                  B.Sim_run.horizon = 200.;
                  warmup = 0.;
                })))
  in
  let tests = Test.make_grouped ~name:"bufsize" [ lp_solve; pi_solve; stationary; sim ] in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
    let raw = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw) instances
    in
    (Analyze.merge ols instances results, raw)
  in
  let results, _ = benchmark () in
  let clock_label = Measure.label Toolkit.Instance.monotonic_clock in
  Hashtbl.iter
    (fun measure by_test ->
      if measure = clock_label then
        Hashtbl.iter
          (fun name ols ->
            match Analyze.OLS.estimates ols with
            | Some [ est ] ->
                record (Printf.sprintf "perf:%s" name) (est *. 1e-9);
                Format.printf "  %-28s %12.1f ns/run@." name est
            | Some _ | None -> Format.printf "  %-28s (no estimate)@." name)
          by_test)
    results

(* --------------------------------------------------------------- SPARSE *)

(* CSR pipeline scaling: sweep the per-processor buffer levels of the
   netproc `core` subsystem (8 loaded processors) from the production
   discretization up to doubled levels, solving each CTMDP end-to-end
   through the sparse pipeline (policy iteration with iterative
   evaluation, sparse stationary distribution).  On the largest instance
   the final policy is re-evaluated through the historical dense path
   (dense (n+1)^2 evaluation system, LU elimination) for the speedup and
   peak-memory comparison.  Sweep points are the number of processors
   whose level count is doubled (0 = today's discretization, 8 = all
   doubled), overridable via BUFSIZE_SPARSE_SWEEP="0,2,..." for CI smoke
   runs.  Results go to BENCH_sparse.json. *)

type sparse_entry = {
  se_name : string;
  se_states : int;
  se_actions : int;
  se_seconds : float;
  se_alloc_mb : float;
  se_rss_mb : float;
  se_speedup : float option;  (* dense seconds / sparse seconds *)
  se_alloc_ratio : float option;  (* dense alloc / sparse alloc *)
}

let sparse_records : sparse_entry list ref = ref []

(* Peak resident set (VmHWM) in MB; 0. where /proc is unavailable. *)
let vm_hwm_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0.
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0.
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf
                (String.sub line 6 (String.length line - 6))
                " %f kB"
                (fun kb -> kb /. 1024.)
            else scan ()
      in
      let hwm = scan () in
      close_in ic;
      hwm

let write_sparse_json path =
  let oc = open_out path in
  output_string oc
    "{\n  \"schema\": \"bufsize-bench-sparse-v1\",\n  \"subsystem\": \"netproc:core\",\n  \"entries\": [\n";
  let entries = List.rev !sparse_records in
  let last = List.length entries - 1 in
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "    {\"name\": %S, \"states\": %d, \"actions\": %d, \"seconds\": %.6f, \
         \"alloc_mb\": %.3f, \"peak_rss_mb\": %.1f%s%s}%s\n"
        e.se_name e.se_states e.se_actions e.se_seconds e.se_alloc_mb e.se_rss_mb
        (match e.se_speedup with
        | None -> ""
        | Some s -> Printf.sprintf ", \"sparse_speedup\": %.3f" s)
        (match e.se_alloc_ratio with
        | None -> ""
        | Some r -> Printf.sprintf ", \"sparse_alloc_ratio\": %.3f" r)
        (if i = last then "" else ","))
    entries;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.printf "@.(json written to %s)@." path

let timed_alloc f =
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let dt = Unix.gettimeofday () -. t0 in
  (x, dt, (Gc.allocated_bytes () -. a0) /. 1048576.)

let run_sparse () =
  section "SPARSE: CSR pipeline scaling (netproc core subsystem, levels sweep)";
  let _, traffic = B.Netproc.create () in
  let split = B.Splitting.split traffic in
  let sub =
    match
      Array.find_opt
        (fun s -> s.B.Splitting.bus_name = "core")
        split.B.Splitting.subsystems
    with
    | Some s -> s
    | None -> failwith "netproc: no core subsystem"
  in
  let base = B.Bus_model.build ~max_states:64 sub in
  let base_levels =
    Array.map (fun (c : B.Bus_model.client_model) -> c.B.Bus_model.levels) (B.Bus_model.clients base)
  in
  let nclients = Array.length base_levels in
  let sweep =
    match Sys.getenv_opt "BUFSIZE_SPARSE_SWEEP" with
    | Some s ->
        List.filter_map
          (fun tok ->
            let tok = String.trim tok in
            if tok = "" then None else Some (int_of_string tok))
          (String.split_on_char ',' s)
    | None -> [ 0; 2; 4; 6; 8 ]
  in
  let record_sparse ?speedup ?alloc_ratio name states actions secs alloc =
    sparse_records :=
      {
        se_name = name;
        se_states = states;
        se_actions = actions;
        se_seconds = secs;
        se_alloc_mb = alloc;
        se_rss_mb = vm_hwm_mb ();
        se_speedup = speedup;
        se_alloc_ratio = alloc_ratio;
      }
      :: !sparse_records
  in
  let line name states actions secs alloc =
    Format.printf "  %-22s %8d %8d %10.3f %10.1f %10.1f@." name states actions secs alloc
      (vm_hwm_mb ())
  in
  Format.printf "  %-22s %8s %8s %10s %10s %10s@." "instance" "states" "actions" "seconds"
    "alloc MB" "rss MB";
  let largest = ref None in
  List.iter
    (fun k ->
      if k < 0 || k > nclients then
        invalid_arg (Printf.sprintf "sparse sweep: %d out of range 0..%d" k nclients);
      (* Double the discretization of the first [k] processors. *)
      let levels = Array.mapi (fun i l -> if i < k then 2 * l else l) base_levels in
      let model = B.Bus_model.build ~levels sub in
      let ctmdp = B.Bus_model.ctmdp model in
      let states = B.Bus_model.num_states model in
      let actions = B.Mdp.Ctmdp.total_state_actions ctmdp in
      let res, dt, alloc = timed_alloc (fun () -> B.Mdp.Policy_iteration.solve ctmdp) in
      let name = Printf.sprintf "sparse:solve:k=%d" k in
      record_sparse name states actions dt alloc;
      line name states actions dt alloc;
      let _occ, dt_s, alloc_s =
        timed_alloc (fun () -> B.Mdp.Policy.stationary ctmdp res.B.Mdp.Policy_iteration.policy)
      in
      let sname = Printf.sprintf "sparse:stationary:k=%d" k in
      record_sparse sname states actions dt_s alloc_s;
      line sname states actions dt_s alloc_s;
      largest := Some (k, ctmdp, states, actions, res))
    sweep;
  match !largest with
  | None -> ()
  | Some (k, ctmdp, states, actions, res) ->
      Format.printf "@.  dense-path comparison on the largest instance (%d states):@." states;
      let choice = res.B.Mdp.Policy_iteration.choice in
      let (_ : float * float array), it_dt, it_alloc =
        timed_alloc (fun () ->
            B.Mdp.Policy_iteration.evaluate_deterministic_iterative ctmdp choice)
      in
      let iname = Printf.sprintf "sparse:evaluate:k=%d" k in
      record_sparse iname states actions it_dt it_alloc;
      line iname states actions it_dt it_alloc;
      let (_ : float * float array), de_dt, de_alloc =
        timed_alloc (fun () -> B.Mdp.Policy_iteration.evaluate_deterministic ctmdp choice)
      in
      let speedup = de_dt /. it_dt in
      let alloc_ratio = de_alloc /. it_alloc in
      let dname = Printf.sprintf "dense:evaluate:k=%d" k in
      record_sparse ~speedup ~alloc_ratio dname states actions de_dt de_alloc;
      line dname states actions de_dt de_alloc;
      Format.printf
        "@.  policy evaluation at %d states: %.2fx faster, %.1fx less allocation sparse@."
        states speedup alloc_ratio

(* ------------------------------------------------------------------ OBS *)

(* Telemetry overhead on the Table 1 sizing run: the same netproc sizing
   timed with telemetry fully disabled and with spans + metrics enabled.
   The acceptance bar is < 3% overhead when DISABLED vs the instrumented
   build's enabled mode staying cheap; both numbers and the headline
   metric values go to BENCH_obs.json.  The sized allocation is also
   cross-checked bitwise between the two modes — telemetry must only
   observe. *)

let obs_json : (string * string) list ref = ref []

let write_obs_json path =
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"bufsize-bench-obs-v1\"";
  List.iter (fun (k, v) -> Printf.fprintf oc ",\n  %S: %s" k v) (List.rev !obs_json);
  output_string oc "\n}\n";
  close_out oc;
  Format.printf "@.(json written to %s)@." path

let run_obs () =
  section "OBS: telemetry overhead on the Table 1 sizing run (netproc, budget 160)";
  (* Cold solves: the repeated identical sizing runs would otherwise hit
     the solve cache and the on/off overhead comparison would be noise. *)
  (with_cold_solves @@ fun () ->
  let _, traffic = B.Netproc.create () in
  let config = { (B.Sizing.default_config ~budget:160) with B.Sizing.max_states = 64 } in
  let reps = 5 in
  let time_one () =
    let t0 = Unix.gettimeofday () in
    let r = B.Sizing.run config traffic in
    (Unix.gettimeofday () -. t0, r)
  in
  (* Interleave disabled/enabled reps (rather than two back-to-back
     blocks) so machine-load drift hits both modes equally; min over the
     reps is the stable statistic for overhead comparisons. *)
  let enable () =
    B.Obs.enable_spans ();
    B.Obs.enable_metrics ()
  in
  B.Obs.disable ();
  B.Obs.reset ();
  ignore (time_one ());
  enable ();
  B.Obs.reset ();
  ignore (time_one ());
  let t_off = ref infinity and t_on = ref infinity in
  let r_off = ref None and r_on = ref None in
  for _ = 1 to reps do
    B.Obs.disable ();
    B.Obs.reset ();
    let dt, r = time_one () in
    if dt < !t_off then t_off := dt;
    r_off := Some r;
    enable ();
    B.Obs.reset ();
    let dt, r = time_one () in
    if dt < !t_on then t_on := dt;
    r_on := Some r
  done;
  let t_off = !t_off and t_on = !t_on in
  let r_off = Option.get !r_off and r_on = Option.get !r_on in
  Format.printf "  %-10s min over %d runs: %8.3f s@." "disabled" reps t_off;
  Format.printf "  %-10s min over %d runs: %8.3f s@." "enabled" reps t_on;
  let identical = r_off.B.Sizing.allocation = r_on.B.Sizing.allocation in
  let overhead_pct = 100. *. (t_on -. t_off) /. t_off in
  let nspans = List.length (B.Obs.recorded_spans ()) in
  Format.printf "  overhead enabled vs disabled: %+.2f%% (%d spans recorded)@." overhead_pct
    nspans;
  Format.printf "  allocation identical with telemetry on/off: %b@." identical;
  let metric name =
    List.find_map
      (function
        | B.Obs.Counter (n, v) when n = name -> Some v
        | B.Obs.Counter _ | B.Obs.Gauge _ | B.Obs.Histogram _ -> None)
      (B.Obs.metrics_snapshot ())
    |> Option.value ~default:0
  in
  let pivots = metric "simplex.pivots" + metric "simplex_revised.pivots" in
  let fallbacks = metric "resilience.fallbacks" in
  Format.printf "  simplex pivots %d, escalation fallbacks %d@." pivots fallbacks;
  obs_json :=
    [
      ("workload", "\"sizing:netproc:budget=160\"");
      ("reps", string_of_int reps);
      ("disabled_seconds", Printf.sprintf "%.6f" t_off);
      ("enabled_seconds", Printf.sprintf "%.6f" t_on);
      ("overhead_pct", Printf.sprintf "%.3f" overhead_pct);
      ("spans_recorded", string_of_int nspans);
      ("simplex_pivots", string_of_int pivots);
      ("resilience_fallbacks", string_of_int fallbacks);
      ("allocation_identical", string_of_bool identical);
    ]
    |> List.rev;
  record "obs:sizing-table1:disabled" t_off;
  record "obs:sizing-table1:enabled" t_on);
  B.Obs.disable ();
  B.Obs.reset ();
  (* Per-request telemetry on the daemon path: the same warm sizing
     request with and without ["telemetry": true], strictly interleaved
     so load drift cancels.  This runs outside the cold-solve scope —
     the daemon's solve cache must be live so the timed requests are
     genuine warm hits.  Telemetry must stay cheap (the capture sink
     only runs for requests that ask) and must only observe — a
     telemetry reply stripped of its telemetry member is byte-identical
     to the plain reply (checked on kron, whose reply carries no
     wall-clock fields). *)
  Format.printf "@.  -- serve: per-request telemetry on vs off (warm size requests) --@.";
  let cfg =
    {
      B.Serve.socket_path = B.Serve.temp_socket_path ();
      queue_depth = 64;
      workers = 2;
      default_deadline_ms = 0.;
      max_request_bytes = 1 lsl 20;
      flight_cap = 256;
      log_requests = false;
    }
  in
  let server = B.Serve.start ~config:cfg () in
  Fun.protect
    ~finally:(fun () -> B.Serve.stop server)
    (fun () ->
      let socket = cfg.B.Serve.socket_path in
      let size_req ~telemetry ~id =
        B.Json.Obj
          ([
             ("id", B.Json.Num (float_of_int id));
             ("op", B.Json.Str "size");
             ("arch", B.Json.Str "netproc");
             ("budget", B.Json.Num 160.);
           ]
          @ if telemetry then [ ("telemetry", B.Json.Bool true) ] else [])
      in
      let ask what req =
        match B.Serve.request ~socket req with
        | Ok r ->
            (match B.Json.mem_string "status" r with
            | Some "ok" -> r
            | s ->
                failwith
                  (Printf.sprintf "obs bench: %s replied %s: %s" what
                     (Option.value ~default:"?" s) (B.Json.encode r)))
        | Error e -> failwith ("obs bench: " ^ what ^ " failed: " ^ e)
      in
      (* Cold solve once so every timed request is a cache hit. *)
      ignore (ask "cold size" (size_req ~telemetry:false ~id:0));
      let reps = 100 in
      let lat_off = Array.make reps 0. and lat_on = Array.make reps 0. in
      for i = 0 to reps - 1 do
        let t0 = Unix.gettimeofday () in
        ignore (ask "warm size" (size_req ~telemetry:false ~id:(1 + (2 * i))));
        lat_off.(i) <- 1000. *. (Unix.gettimeofday () -. t0);
        let t1 = Unix.gettimeofday () in
        ignore (ask "warm telemetry size" (size_req ~telemetry:true ~id:(2 + (2 * i))));
        lat_on.(i) <- 1000. *. (Unix.gettimeofday () -. t1)
      done;
      Array.sort compare lat_off;
      Array.sort compare lat_on;
      let p50_off = lat_off.(reps / 2) and p50_on = lat_on.(reps / 2) in
      let kron_req ~telemetry =
        B.Json.Obj
          ([
             ("id", B.Json.Num 999.);
             ("op", B.Json.Str "kron");
             ("dims", B.Json.List [ B.Json.Num 4.; B.Json.Num 4. ]);
             ("rates", B.Json.List [ B.Json.Num 1.; B.Json.Num 2. ]);
           ]
          @ if telemetry then [ ("telemetry", B.Json.Bool true) ] else [])
      in
      let plain = ask "kron" (kron_req ~telemetry:false) in
      let tele = ask "kron telemetry" (kron_req ~telemetry:true) in
      let strip = function
        | B.Json.Obj kvs -> B.Json.Obj (List.filter (fun (k, _) -> k <> "telemetry") kvs)
        | v -> v
      in
      let strip_identical = B.Json.encode (strip tele) = B.Json.encode plain in
      (* A warm size request is a ~0.2 ms cache-hit round trip, so the
         fixed cost of serializing the span subtree dwarfs any relative
         bar — the cache-hit numbers are reported as the worst case and
         gated in absolute terms (sub-millisecond).  The <= 3% relative
         bar is held on a workload-representative request: a simulate
         run (multi-ms DES, deterministic by seed, recomputed every
         call so nothing is a cache hit). *)
      let sim_req ~telemetry ~id =
        B.Json.Obj
          ([
             ("id", B.Json.Num (float_of_int id));
             ("op", B.Json.Str "simulate");
             ("arch", B.Json.Str "netproc");
             ("policy", B.Json.Str "uniform");
             ("budget", B.Json.Num 160.);
             ("horizon", B.Json.Num 2000.);
             ("seed", B.Json.Num 1.);
           ]
          @ if telemetry then [ ("telemetry", B.Json.Bool true) ] else [])
      in
      ignore (ask "warmup simulate" (sim_req ~telemetry:false ~id:1000));
      let sim_reps = 30 in
      let sim_off = Array.make sim_reps 0. and sim_on = Array.make sim_reps 0. in
      for i = 0 to sim_reps - 1 do
        let t0 = Unix.gettimeofday () in
        ignore (ask "simulate" (sim_req ~telemetry:false ~id:(1001 + (2 * i))));
        sim_off.(i) <- 1000. *. (Unix.gettimeofday () -. t0);
        let t1 = Unix.gettimeofday () in
        ignore (ask "simulate telemetry" (sim_req ~telemetry:true ~id:(1002 + (2 * i))));
        sim_on.(i) <- 1000. *. (Unix.gettimeofday () -. t1)
      done;
      Array.sort compare sim_off;
      Array.sort compare sim_on;
      let sim_p50_off = sim_off.(sim_reps / 2) and sim_p50_on = sim_on.(sim_reps / 2) in
      let sim_overhead_pct =
        100. *. (sim_p50_on -. sim_p50_off) /. Float.max 1e-9 sim_p50_off
      in
      Format.printf "  cache-hit size p50 telemetry off %10.3f ms@." p50_off;
      Format.printf "  cache-hit size p50 telemetry on  %10.3f ms@." p50_on;
      Format.printf "  cache-hit telemetry overhead     %+9.3f ms  (bar: <= 1 ms absolute)@."
        (p50_on -. p50_off);
      Format.printf "  simulate p50 telemetry off       %10.3f ms@." sim_p50_off;
      Format.printf "  simulate p50 telemetry on        %10.3f ms@." sim_p50_on;
      Format.printf "  simulate telemetry overhead      %+9.2f%%  (bar: <= 3%%)@."
        sim_overhead_pct;
      Format.printf "  stripped reply identical         %9b@." strip_identical;
      if not strip_identical then
        failwith "obs bench: telemetry reply is not byte-identical after stripping";
      if p50_on -. p50_off > 1.0 then
        failwith "obs bench: cache-hit telemetry overhead above 1 ms absolute";
      if sim_overhead_pct > 3.0 && sim_p50_on -. sim_p50_off > 0.3 then
        failwith "obs bench: simulate telemetry overhead above the 3% bar";
      record "obs:serve-warm-p50:telemetry-off" (p50_off /. 1000.);
      record "obs:serve-warm-p50:telemetry-on" (p50_on /. 1000.);
      record "obs:serve-sim-p50:telemetry-off" (sim_p50_off /. 1000.);
      record "obs:serve-sim-p50:telemetry-on" (sim_p50_on /. 1000.);
      obs_json :=
        List.rev
          [
            ("serve_reps", string_of_int reps);
            ("serve_warm_p50_off_ms", Printf.sprintf "%.6f" p50_off);
            ("serve_warm_p50_on_ms", Printf.sprintf "%.6f" p50_on);
            ("serve_telemetry_overhead_ms", Printf.sprintf "%.6f" (p50_on -. p50_off));
            ("serve_sim_reps", string_of_int sim_reps);
            ("serve_sim_p50_off_ms", Printf.sprintf "%.6f" sim_p50_off);
            ("serve_sim_p50_on_ms", Printf.sprintf "%.6f" sim_p50_on);
            ("serve_telemetry_overhead_pct", Printf.sprintf "%.3f" sim_overhead_pct);
            ("serve_strip_identical", string_of_bool strip_identical);
          ]
        @ !obs_json);
  B.Obs.disable ();
  B.Obs.reset ()

(* ------------------------------------------------------------ WARMSTART *)

let warmstart_json : (string * string) list ref = ref []

let write_warmstart_json path =
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"bufsize-bench-warmstart-v1\"";
  List.iter (fun (k, v) -> Printf.fprintf oc ",\n  %S: %s" k v) (List.rev !warmstart_json);
  output_string oc "\n}\n";
  close_out oc;
  Format.printf "@.(json written to %s)@." path

(* The Fig-3 resize loop: an outer design loop (parameter sweeps, what-if
   resizing, the replication-heavy experiment driver) re-runs the netproc
   sizing many times with the same spec.  Cold, every iteration pays the
   full CTMDP build + LP solve; warm, the first iteration populates the
   exact-key solve cache (and the warm-basis registry) and the rest are
   hits, so the whole loop costs about one iteration.  The artifact also
   cross-checks that the warm loop's answer is bitwise the cold one. *)
let run_warmstart () =
  section "WARMSTART: Fig-3 resize loop (10 iterations), cold solves vs solve cache + warm starts";
  let iterations = 10 in
  let _, traffic = B.Netproc.create () in
  let config = { (B.Sizing.default_config ~budget:160) with B.Sizing.max_states = 64 } in
  let loop () =
    let last = ref None in
    for _ = 1 to iterations do
      last := Some (B.Sizing.run config traffic)
    done;
    Option.get !last
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_cold, r_cold = with_cold_solves (fun () -> time loop) in
  let cache_was = B.Numeric.Solve_cache.enabled () in
  let warm_was = B.Numeric.Lp.warm_start_enabled () in
  B.Numeric.Solve_cache.set_enabled true;
  B.Numeric.Lp.set_warm_start true;
  B.Numeric.Solve_cache.clear_all ();
  let sz_hits0, sz_misses0 = B.Sizing.cache_stats () in
  let lp_hits0, _ = B.Numeric.Lp.cache_stats () in
  let acc0, rej0 = B.Numeric.Simplex_revised.warm_stats () in
  let t_warm, r_warm =
    Fun.protect
      ~finally:(fun () ->
        B.Numeric.Solve_cache.set_enabled cache_was;
        B.Numeric.Lp.set_warm_start warm_was;
        B.Numeric.Solve_cache.clear_all ())
      (fun () -> time loop)
  in
  let sz_hits, sz_misses = B.Sizing.cache_stats () in
  let lp_hits, _ = B.Numeric.Lp.cache_stats () in
  let acc, rej = B.Numeric.Simplex_revised.warm_stats () in
  let bits = Int64.bits_of_float in
  let identical =
    r_cold.B.Sizing.allocation = r_warm.B.Sizing.allocation
    && bits r_cold.B.Sizing.predicted_loss_rate = bits r_warm.B.Sizing.predicted_loss_rate
    && bits r_cold.B.Sizing.words_per_level = bits r_warm.B.Sizing.words_per_level
    && r_cold.B.Sizing.budget_bound_active = r_warm.B.Sizing.budget_bound_active
  in
  let speedup = t_cold /. t_warm in
  Format.printf "  %-28s %10.2f s@." (Printf.sprintf "cold (%d iterations)" iterations) t_cold;
  Format.printf "  %-28s %10.2f s %8.2fx@."
    (Printf.sprintf "warm (%d iterations)" iterations)
    t_warm speedup;
  Format.printf "  sizing cache: %d hits / %d misses; lp cache: %d hits@." (sz_hits - sz_hits0)
    (sz_misses - sz_misses0) (lp_hits - lp_hits0);
  Format.printf "  warm bases: %d accepted / %d rejected@." (acc - acc0) (rej - rej0);
  Format.printf "  warm result bitwise identical to cold: %b@."
    identical;
  if not identical then Format.printf "  WARNING: warm loop diverged from the cold loop!@.";
  record "warmstart:fig3-resize10:cold" t_cold;
  record ~speedup "warmstart:fig3-resize10:warm" t_warm;
  warmstart_json :=
    [
      ("workload", "\"sizing:netproc:budget=160:max_states=64\"");
      ("iterations", string_of_int iterations);
      ("cold_seconds", Printf.sprintf "%.6f" t_cold);
      ("warm_seconds", Printf.sprintf "%.6f" t_warm);
      ("speedup", Printf.sprintf "%.3f" speedup);
      ("identical", string_of_bool identical);
      ("sizing_cache_hits", string_of_int (sz_hits - sz_hits0));
      ("sizing_cache_misses", string_of_int (sz_misses - sz_misses0));
      ("lp_cache_hits", string_of_int (lp_hits - lp_hits0));
      ("warm_accepted", string_of_int (acc - acc0));
      ("warm_rejected", string_of_int (rej - rej0));
    ]
    |> List.rev

(* ----------------------------------------------------------------- KRON *)

(* Monolithic (un-split) solve of the bridged two-bus model through the
   Kronecker/SAN descriptor, swept over the per-queue capacity k (joint
   state space (k+1)^3, so k = 99 is the 10^6-state point).  The joint
   generator is never materialized — memory stays O(n) vectors — and on
   every instance small enough to materialize (<= 6500 states) the
   stationary vector is cross-checked against the dense GTH solve to
   1e-8.  Sweep override: BUFSIZE_KRON_SWEEP="4,8,17" for CI smoke runs.
   Results (states, sweeps, seconds, peak RSS, losses, split-vs-joint
   gaps, crosscheck) go to BENCH_kron.json. *)

type kron_entry = {
  ke_k : int;
  ke_states : int;
  ke_sweeps : int;
  ke_converged : bool;
  ke_seconds : float;
  ke_rss_mb : float;
  ke_residual : float;
  ke_x_loss : float;
  ke_bridge_loss : float;
  ke_y_loss : float;
  ke_bridge_loss_gap_pct : float;
  ke_y_loss_gap_pct : float;
  ke_crosscheck : float option;  (* max |pi_kron - pi_dense|, small instances *)
}

let kron_records : kron_entry list ref = ref []

let write_kron_json path =
  let oc = open_out path in
  output_string oc
    "{\n  \"schema\": \"bufsize-bench-kron-v1\",\n  \"spec\": \
     \"lambda_x=1.5 mu_x=2.4 cross=0.25 lambda_y=1.2 mu_y=2.2\",\n  \"entries\": [\n";
  let entries = List.rev !kron_records in
  let last = List.length entries - 1 in
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "    {\"k\": %d, \"states\": %d, \"sweeps\": %d, \"converged\": %b, \
         \"seconds\": %.6f, \"peak_rss_mb\": %.1f, \"residual\": %.3e, \
         \"x_loss\": %.9g, \"bridge_loss\": %.9g, \"y_loss\": %.9g, \
         \"bridge_loss_gap_pct\": %.3f, \"y_loss_gap_pct\": %.3f%s}%s\n"
        e.ke_k e.ke_states e.ke_sweeps e.ke_converged e.ke_seconds e.ke_rss_mb
        e.ke_residual e.ke_x_loss e.ke_bridge_loss e.ke_y_loss
        e.ke_bridge_loss_gap_pct e.ke_y_loss_gap_pct
        (match e.ke_crosscheck with
        | None -> ""
        | Some d ->
            Printf.sprintf ", \"crosscheck_max_abs_diff\": %.3e, \"crosscheck_ok\": %b" d
              (d <= 1e-8))
        (if i = last then "" else ","))
    entries;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.printf "@.(json written to %s)@." path

let run_kron () =
  section "KRON: un-split bridged model via the Kronecker/SAN descriptor (state-space sweep)";
  let spec k =
    {
      B.Monolithic.kx = k;
      ky = k;
      lambda_x = 1.5;
      lambda_y = 1.2;
      cross_fraction = 0.25;
      mu_x = 2.4;
      mu_y = 2.2;
    }
  in
  let sweep =
    match Sys.getenv_opt "BUFSIZE_KRON_SWEEP" with
    | Some s ->
        List.filter_map
          (fun tok ->
            let tok = String.trim tok in
            if tok = "" then None else Some (int_of_string tok))
          (String.split_on_char ',' s)
    | None -> [ 4; 8; 17; 30; 63; 99 ]
  in
  Format.printf "  %-6s %10s %8s %10s %8s %14s %10s %10s@." "k" "states" "sweeps" "seconds"
    "rss MB" "bridge_loss" "gap_b %" "gap_y %";
  List.iter
    (fun k ->
      let sp = spec k in
      let t0 = Unix.gettimeofday () in
      let g = B.San_bridge.compare_split ~tol:1e-9 ~max_sweeps:100_000 sp in
      let dt = Unix.gettimeofday () -. t0 in
      let j = g.B.San_bridge.joint in
      (* On materializable instances, the Kronecker-side stationary vector
         must agree with the dense GTH solve on the materialized joint
         generator — the same invariant the kron oracle fuzzes. *)
      let crosscheck =
        if j.B.San_bridge.states <= 6500 then begin
          let san = B.San_bridge.model sp in
          let pi_kron = B.Prob.San.stationary san in
          let pi_dense = B.Prob.Ctmc.stationary (B.Prob.San.to_ctmc san) in
          let d = ref 0. in
          Array.iteri
            (fun i x -> d := Float.max !d (Float.abs (x -. pi_dense.(i))))
            pi_kron;
          Some !d
        end
        else None
      in
      kron_records :=
        {
          ke_k = k;
          ke_states = j.B.San_bridge.states;
          ke_sweeps = j.B.San_bridge.sweeps;
          ke_converged = j.B.San_bridge.converged;
          ke_seconds = dt;
          ke_rss_mb = vm_hwm_mb ();
          ke_residual = j.B.San_bridge.residual;
          ke_x_loss = j.B.San_bridge.x_loss;
          ke_bridge_loss = j.B.San_bridge.bridge_loss;
          ke_y_loss = j.B.San_bridge.y_loss;
          ke_bridge_loss_gap_pct = g.B.San_bridge.bridge_loss_gap_pct;
          ke_y_loss_gap_pct = g.B.San_bridge.y_loss_gap_pct;
          ke_crosscheck = crosscheck;
        }
        :: !kron_records;
      record (Printf.sprintf "kron:solve:k=%d" k) dt;
      Format.printf "  %-6d %10d %8d %10.2f %8.1f %14.6g %10.2f %10.2f%s%s@." k
        j.B.San_bridge.states j.B.San_bridge.sweeps dt (vm_hwm_mb ())
        j.B.San_bridge.bridge_loss g.B.San_bridge.bridge_loss_gap_pct
        g.B.San_bridge.y_loss_gap_pct
        (match crosscheck with
        | None -> ""
        | Some d -> Printf.sprintf "   (dense crosscheck %.1e)" d)
        (if j.B.San_bridge.converged then "" else "   NOT CONVERGED"))
    sweep;
  Format.printf
    "@.the joint generator is never materialized: memory is O(n) vectors, so the@.\
     10^6-state point (k=99) runs where the dense route would need ~8 TB for the@.\
     generator alone.  The split approximation's bridge-loss error is the joint@.\
     X-busy/bridge-full correlation its Poisson closure cannot express.@."

(* ----------------------------------------------------------------- TOPO *)

(* Mesh NoC sweep (n x n routers, shared-pool buffers, shift-by-one NI
   traffic through the spec-text front door) comparing the three buffer
   organizations per router: the paper's static partition, the DAMQ shared
   pool at equal capacity, and the decoupled per-client M/M/1 baseline.
   The invariant the CI smoke asserts: total DAMQ loss <= total static
   loss at equal budget (the static admission rule is one of the pool's
   actions).  Sweep override: BUFSIZE_TOPO_SWEEP="2,3" for smoke runs. *)

let topo_spec_text ~rows ~cols ~mu ~rate =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "mesh noc rows %d cols %d rate %g\n" rows cols mu);
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Buffer.add_string buf (Printf.sprintf "shared_buffer noc_r%dc%d\n" r c);
      Buffer.add_string buf (Printf.sprintf "proc ni_r%dc%d on noc_r%dc%d\n" r c r c)
    done
  done;
  let n = rows * cols in
  for i = 0 to n - 1 do
    let j = (i + 1) mod n in
    Buffer.add_string buf
      (Printf.sprintf "flow ni_r%dc%d -> ni_r%dc%d rate %g\n" (i / cols) (i mod cols)
         (j / cols) (j mod cols) rate)
  done;
  Buffer.contents buf

type topo_entry = {
  te_size : int;
  te_buses : int;
  te_compared : int;
  te_skipped : int;
  te_budget : int;
  te_seconds : float;
  te_rss_mb : float;
  te_static_loss : float;
  te_damq_loss : float;
  te_separate_loss : float;
  te_static_delay : float;  (* mean over compared buses *)
  te_damq_delay : float;
  te_separate_delay : float;
}

let topo_records : topo_entry list ref = ref []

let write_topo_json path =
  let oc = open_out path in
  output_string oc
    "{\n  \"schema\": \"bufsize-bench-topo-v1\",\n  \"spec\": \
     \"n x n mesh, mu=2.0, shift-by-one NI flows at 0.2, budget=8 words/router, \
     max_states=16\",\n  \"entries\": [\n";
  let entries = List.rev !topo_records in
  let last = List.length entries - 1 in
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "    {\"size\": %d, \"buses\": %d, \"compared\": %d, \"skipped\": %d, \
         \"budget\": %d, \"seconds\": %.6f, \"peak_rss_mb\": %.1f, \
         \"static_loss\": %.9g, \"damq_loss\": %.9g, \"separate_loss\": %.9g, \
         \"damq_le_static\": %b, \"static_delay\": %.9g, \"damq_delay\": %.9g, \
         \"separate_delay\": %.9g}%s\n"
        e.te_size e.te_buses e.te_compared e.te_skipped e.te_budget e.te_seconds e.te_rss_mb
        e.te_static_loss e.te_damq_loss e.te_separate_loss
        (e.te_damq_loss <= e.te_static_loss +. 1e-9)
        e.te_static_delay e.te_damq_delay e.te_separate_delay
        (if i = last then "" else ","))
    entries;
  output_string oc "  ]\n}\n";
  close_out oc;
  Format.printf "@.(json written to %s)@." path

let run_topo () =
  section "TOPO: mesh NoC sweep, static vs DAMQ vs separate buffer organizations";
  let sweep =
    match Sys.getenv_opt "BUFSIZE_TOPO_SWEEP" with
    | Some s ->
        List.filter_map
          (fun tok ->
            let tok = String.trim tok in
            if tok = "" then None else Some (int_of_string tok))
          (String.split_on_char ',' s)
    | None -> [ 2; 3; 4; 5; 6; 7; 8 ]
  in
  Format.printf "  %-6s %8s %10s %12s %12s %12s %10s@." "n" "buses" "seconds" "static_loss"
    "damq_loss" "sep_loss" "damq<=st";
  List.iter
    (fun n ->
      let text = topo_spec_text ~rows:n ~cols:n ~mu:2.0 ~rate:0.2 in
      let traffic =
        match B.Spec_parser.parse text with
        | Ok (_, traffic) -> traffic
        | Error msg -> failwith ("topo bench spec: " ^ msg)
      in
      let budget = 8 * n * n in
      let config =
        { (B.Sizing.default_config ~budget) with B.Sizing.max_states = 16 }
      in
      let t0 = Unix.gettimeofday () in
      let _result, report = B.Sizing.compare_sharing config traffic in
      let dt = Unix.gettimeofday () -. t0 in
      let entries = report.B.Sizing.entries in
      let mean f =
        match entries with
        | [] -> 0.
        | _ ->
            List.fold_left (fun acc e -> acc +. f e) 0. entries
            /. float_of_int (List.length entries)
      in
      let e =
        {
          te_size = n;
          te_buses = n * n;
          te_compared = List.length entries;
          te_skipped = List.length report.B.Sizing.skipped;
          te_budget = budget;
          te_seconds = dt;
          te_rss_mb = vm_hwm_mb ();
          te_static_loss = report.B.Sizing.total_static_loss;
          te_damq_loss = report.B.Sizing.total_damq_loss;
          te_separate_loss = report.B.Sizing.total_separate_loss;
          te_static_delay = mean (fun e -> e.B.Sizing.static_delay);
          te_damq_delay = mean (fun e -> e.B.Sizing.damq_delay);
          te_separate_delay = mean (fun e -> e.B.Sizing.separate_delay);
        }
      in
      topo_records := e :: !topo_records;
      record (Printf.sprintf "topo:compare:n=%d" n) dt;
      Format.printf "  %-6d %8d %10.2f %12.6g %12.6g %12.6g %10b@." n (n * n) dt
        e.te_static_loss e.te_damq_loss e.te_separate_loss
        (e.te_damq_loss <= e.te_static_loss +. 1e-9))
    sweep;
  Format.printf
    "@.dynamic sharing (DAMQ) dominates the static partition on loss at equal@.\
     capacity — the static admission rule is one of the pool's actions — while@.\
     the decoupled per-client M/M/1 baseline understates loss by ignoring bus@.\
     arbitration contention.@."

(* ---------------------------------------------------------------- SERVE *)

(* Daemon round-trip latency.  One cold request against a fresh server
   (solve caches cleared, so the solve dominates), then a warm sweep from
   concurrent client domains hitting the same problem — the exact-key
   solve cache turns those into near-pure protocol overhead, so warm p50
   should sit far below the cold latency (the acceptance bar in the CI
   smoke job is 0.2x).  Every reply is checked bitwise against the first:
   concurrency must never change an answer. *)

type serve_summary = {
  se_arch : string;
  se_budget : int;
  se_cold_ms : float;
  se_clients : int;
  se_requests : int;
  se_warm_p50_ms : float;
  se_warm_p99_ms : float;
  se_throughput_rps : float;
  se_bitwise : bool;
}

let serve_summary : serve_summary option ref = ref None

let write_serve_json path =
  match !serve_summary with
  | None -> ()
  | Some s ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n\
        \  \"schema\": \"bufsize-bench-serve-v1\",\n\
        \  \"arch\": %S,\n\
        \  \"budget\": %d,\n\
        \  \"cold_ms\": %.6f,\n\
        \  \"clients\": %d,\n\
        \  \"requests\": %d,\n\
        \  \"warm_p50_ms\": %.6f,\n\
        \  \"warm_p99_ms\": %.6f,\n\
        \  \"throughput_rps\": %.1f,\n\
        \  \"warm_p50_over_cold\": %.6f,\n\
        \  \"bitwise_identical\": %b\n\
         }\n"
        s.se_arch s.se_budget s.se_cold_ms s.se_clients s.se_requests s.se_warm_p50_ms
        s.se_warm_p99_ms s.se_throughput_rps
        (s.se_warm_p50_ms /. Float.max 1e-9 s.se_cold_ms)
        s.se_bitwise;
      close_out oc;
      Format.printf "@.(json written to %s)@." path

let run_serve () =
  section "SERVE: daemon round-trip latency, cold solve vs warm concurrent clients";
  let arch = "netproc" and budget = 160 in
  let clients = 4 and per_client = 25 in
  let cfg =
    {
      B.Serve.socket_path = B.Serve.temp_socket_path ();
      queue_depth = 64;
      workers = 4;
      default_deadline_ms = 0.;
      max_request_bytes = 1 lsl 20;
      flight_cap = 256;
      log_requests = false;
    }
  in
  let request ~id =
    B.Json.Obj
      [
        ("id", B.Json.Num (float_of_int id));
        ("op", B.Json.Str "size");
        ("arch", B.Json.Str arch);
        ("budget", B.Json.Num (float_of_int budget));
      ]
  in
  let result_of reply = B.Json.encode (B.Json.member_exn "result" reply) in
  let server = B.Serve.start ~config:cfg () in
  Fun.protect
    ~finally:(fun () -> B.Serve.stop server)
    (fun () ->
      let socket = cfg.B.Serve.socket_path in
      B.Numeric.Solve_cache.clear_all ();
      let t0 = Unix.gettimeofday () in
      let cold_reply =
        match B.Serve.request ~socket (request ~id:0) with
        | Ok r -> r
        | Error e -> failwith ("serve bench: cold request failed: " ^ e)
      in
      let cold_ms = 1000. *. (Unix.gettimeofday () -. t0) in
      let expected = result_of cold_reply in
      let sweep_t0 = Unix.gettimeofday () in
      let domains =
        Array.init clients (fun c ->
            Domain.spawn (fun () ->
                Array.init per_client (fun i ->
                    let t0 = Unix.gettimeofday () in
                    let reply =
                      match B.Serve.request ~socket (request ~id:((100 * c) + i)) with
                      | Ok r -> r
                      | Error e -> failwith ("serve bench: warm request failed: " ^ e)
                    in
                    (1000. *. (Unix.gettimeofday () -. t0), result_of reply = expected))))
      in
      let per_domain = Array.map Domain.join domains in
      let sweep_s = Unix.gettimeofday () -. sweep_t0 in
      let samples = Array.concat (Array.to_list per_domain) in
      let lat = Array.map fst samples in
      Array.sort compare lat;
      let pct p =
        let n = Array.length lat in
        lat.(Int.min (n - 1) (int_of_float (p *. float_of_int n)))
      in
      let bitwise = Array.for_all snd samples in
      let n = Array.length samples in
      let s =
        {
          se_arch = arch;
          se_budget = budget;
          se_cold_ms = cold_ms;
          se_clients = clients;
          se_requests = n;
          se_warm_p50_ms = pct 0.5;
          se_warm_p99_ms = pct 0.99;
          se_throughput_rps = float_of_int n /. Float.max 1e-9 sweep_s;
          se_bitwise = bitwise;
        }
      in
      serve_summary := Some s;
      record "serve:cold-request" (cold_ms /. 1000.);
      record "serve:warm-sweep" sweep_s;
      Format.printf "  cold single request     %10.2f ms  (%s, budget %d)@." cold_ms arch budget;
      Format.printf "  warm p50 / p99          %10.3f ms / %.3f ms  (%d clients x %d requests)@."
        s.se_warm_p50_ms s.se_warm_p99_ms clients per_client;
      Format.printf "  throughput              %10.1f requests/s@." s.se_throughput_rps;
      Format.printf "  warm p50 / cold         %10.4f  (bar: <= 0.2)@."
        (s.se_warm_p50_ms /. Float.max 1e-9 cold_ms);
      Format.printf "  bitwise identical       %10b@." bitwise;
      if not bitwise then failwith "serve bench: a concurrent reply diverged from the cold reply")

(* ----------------------------------------------------------------- main *)

(* SIGINT/SIGTERM turn into exit so the at_exit telemetry exporters
   (BUFSIZE_TRACE / metrics) still flush when a long sweep is cut short. *)
let install_exit_on_signals () =
  List.iter
    (fun signum ->
      try Sys.set_signal signum (Sys.Signal_handle (fun s -> Stdlib.exit (128 + s)))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let () =
  install_exit_on_signals ();
  B.Obs.init_from_env ();
  let artifacts = [ "fig1"; "nonlinear"; "fig3"; "table1" ] in
  let ablations =
    [
      "ablation-quantile";
      "ablation-levels";
      "ablation-solver";
      "ablation-weights";
      "ablation-profiling";
      "parallel";
      "perf";
      "sparse";
      "obs";
      "warmstart";
      "kron";
      "topo";
      "serve";
    ]
  in
  let args = match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [] in
  let selected =
    match args with
    | [] -> artifacts
    | [ "all" ] -> artifacts @ ablations
    | xs -> xs
  in
  List.iter
    (fun name ->
      let t0 = Unix.gettimeofday () in
      let known = ref true in
      (match name with
      | "fig1" -> run_fig1 ()
      | "nonlinear" -> run_nonlinear ()
      | "fig3" -> ignore (run_fig3 ())
      | "table1" -> run_table1 ()
      | "ablation-quantile" -> run_ablation_quantile ()
      | "ablation-levels" -> run_ablation_levels ()
      | "ablation-solver" -> run_ablation_solver ()
      | "ablation-weights" -> run_ablation_weights ()
      | "ablation-profiling" -> run_ablation_profiling ()
      | "parallel" -> run_parallel ()
      | "perf" -> run_perf ()
      | "sparse" -> run_sparse ()
      | "obs" -> run_obs ()
      | "warmstart" -> run_warmstart ()
      | "kron" -> run_kron ()
      | "topo" -> run_topo ()
      | "serve" -> run_serve ()
      | other ->
          known := false;
          Format.printf "unknown artifact %S; known: %s@." other
            (String.concat ", " (artifacts @ ablations @ [ "all" ])));
      if !known then record (Printf.sprintf "artifact:%s" name) (Unix.gettimeofday () -. t0))
    selected;
  if List.exists (fun a -> a = "perf" || a = "parallel") selected then
    write_bench_json "BENCH_parallel.json";
  if List.mem "sparse" selected then write_sparse_json "BENCH_sparse.json";
  if List.mem "obs" selected then write_obs_json "BENCH_obs.json";
  if List.mem "warmstart" selected then write_warmstart_json "BENCH_warmstart.json";
  if List.mem "kron" selected then write_kron_json "BENCH_kron.json";
  if List.mem "topo" selected then write_topo_json "BENCH_topo.json";
  if List.mem "serve" selected then write_serve_json "BENCH_serve.json"
